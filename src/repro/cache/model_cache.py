"""The per-model cache façade the serving request path talks to.

A :class:`ModelCache` bundles one :class:`~repro.cache.store.DeviceResidentCache`
per entry *kind* a model declares (``cache_kinds``):

* ``"embedding"`` -- final node-embedding rows, resident on the model's
  compute device.  A hit short-circuits the node's entire recursive
  sampling + attention subtree.
* ``"sample"`` -- temporal-neighbourhood sample rows, resident in host
  memory (they are CPU-side sampling structures).  A hit skips the per-row
  binary search + draw in :class:`~repro.graph.sampling.TemporalNeighborSampler`
  -- the paper's dominant inference cost.
* ``"memory"`` -- device-resident copies of per-node recurrent state (TGN's
  memory rows).  A hit skips the row's host->device upload; values are exact
  (memory rows only change when their node is touched, and every write goes
  through the cache), so only the transfer cost changes.

All stores share one policy name, one staleness bound, and an equal split of
the byte budget.  Lookups/inserts are charged on whatever stream is current
when the model calls in -- synchronously on the blocking path, asynchronously
inside the overlap server's named sampling stream.

Consistency contract (who calls what, in request order):

1. ``lookup_*`` / ``sample`` while building the batch's plan -- hits are
   admitted against the *pre-batch* cache state;
2. the model computes the misses;
3. ``observe_events(batch)`` -- the batch's events are incoming graph
   mutations, so entries touched by them are invalidated;
4. ``store_*`` -- freshly computed rows are inserted at their query event
   times (after invalidation, so they survive their own batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.events import EventStream
from ..graph.sampling import NeighborhoodSample, TemporalNeighborSampler
from ..hw.device import Device
from ..hw.machine import Machine
from .policy import make_eviction_policy
from .store import CacheCostModel, CacheStats, DeviceResidentCache

#: Kinds that live on the model's compute device; everything else lives on
#: the host CPU (sampling structures are CPU-side).
_DEVICE_KINDS = ("embedding", "memory")


@dataclass
class CachedPlan:
    """A batch's prepared work after cache admission.

    ``hit_indices``/``hit_rows`` are the query rows served from the
    embedding cache; ``miss_nodes``/``miss_times`` (at ``miss_indices`` of
    the original query order) still need the full sampling + compute path,
    and ``samples`` is their precomputed sampling plan in the model's
    depth-first query order.
    """

    hit_indices: np.ndarray
    hit_rows: Optional[np.ndarray]
    miss_indices: np.ndarray
    miss_nodes: np.ndarray
    miss_times: np.ndarray
    samples: List[NeighborhoodSample] = field(default_factory=list)

    @property
    def num_hits(self) -> int:
        return int(self.hit_indices.size)


class ModelCache:
    """Staleness-bounded embedding/sample/memory cache for one model.

    Args:
        machine: Machine whose clock and memory pools are charged.
        compute_device: Device holding embedding/memory rows.
        kinds: Entry kinds to enable (subset of embedding/sample/memory).
        policy: Eviction policy name (one fresh instance per store).
        capacity_mb: Total byte budget, split equally across the stores.
        staleness_ms: Event-time staleness bound (strict; 0 disables hits).
        cost_model: Machine-clock cost parameters shared by the stores.
        degree_of: Optional ``node -> temporal degree`` callable (the
            degree-weighted policy's insert weight).
    """

    def __init__(
        self,
        machine: Machine,
        compute_device: Device,
        kinds: Sequence[str],
        policy: str = "lru",
        capacity_mb: float = 64.0,
        staleness_ms: float = 0.0,
        cost_model: Optional[CacheCostModel] = None,
        degree_of: Optional[Callable[[int], float]] = None,
    ) -> None:
        kinds = tuple(kinds)
        if not kinds:
            raise ValueError("a model cache needs at least one entry kind")
        unknown = [k for k in kinds if k not in ("embedding", "sample", "memory")]
        if unknown:
            raise ValueError(f"unknown cache kind(s) {unknown}")
        if capacity_mb <= 0:
            raise ValueError("cache capacity must be positive")
        self.machine = machine
        self.compute_device = compute_device
        self.policy_name = policy
        self.capacity_mb = float(capacity_mb)
        self.staleness_ms = float(staleness_ms)
        self.cost = cost_model if cost_model is not None else CacheCostModel()
        per_store = int(capacity_mb * 1e6 / len(kinds))
        self._stores: Dict[str, DeviceResidentCache] = {}
        for kind in kinds:
            device = compute_device if kind in _DEVICE_KINDS else machine.cpu
            self._stores[kind] = DeviceResidentCache(
                machine,
                device,
                kind,
                make_eviction_policy(policy),
                per_store,
                staleness_ms,
                cost_model=self.cost,
                weight_of=degree_of,
            )

    # -- introspection -----------------------------------------------------

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(self._stores)

    def store(self, kind: str) -> Optional[DeviceResidentCache]:
        return self._stores.get(kind)

    @property
    def embeddings(self) -> Optional[DeviceResidentCache]:
        return self._stores.get("embedding")

    @property
    def samples(self) -> Optional[DeviceResidentCache]:
        return self._stores.get("sample")

    @property
    def memory(self) -> Optional[DeviceResidentCache]:
        return self._stores.get("memory")

    def describe(self) -> str:
        return (
            f"{self.policy_name}/{self.capacity_mb:g}MB/"
            f"staleness={self.staleness_ms:g}ms"
        )

    # -- adaptive fidelity -------------------------------------------------

    def set_fidelity(self, staleness_scale: float = 1.0, force_hits: bool = False) -> None:
        """Apply (or clear) the degradation controller's cache levers.

        ``staleness_scale`` multiplies every store's configured staleness
        bound for subsequent probes (lever 2); ``force_hits`` widens the
        *embedding* store's window to infinity so resident rows are served
        regardless of age (lever 3, for rows whose deadline is already
        lost).  ``(1.0, False)`` restores the configured bounds exactly.
        Stores with a zero base bound stay byte-identical to uncached
        execution: they never admitted writes, so there is nothing a wider
        window could serve.
        """
        if staleness_scale < 1.0:
            raise ValueError("staleness_scale must be >= 1")
        for kind, store in self._stores.items():
            override: Optional[float] = None
            if store.staleness_ms > 0.0:
                if staleness_scale > 1.0:
                    override = store.staleness_ms * staleness_scale
                if force_hits and kind == "embedding":
                    override = float("inf")
            store.set_staleness_override(override)

    # -- embeddings --------------------------------------------------------

    def lookup_embeddings(
        self, nodes: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, Optional[np.ndarray], np.ndarray]:
        """Admit a batch of (node, query-time) rows against the embedding store.

        Returns ``(hit_indices, hit_rows, miss_indices)`` over the query
        order; ``hit_rows`` is ``None`` when nothing hit.
        """
        store = self._stores.get("embedding")
        n = len(nodes)
        if store is None:
            return (
                np.empty(0, dtype=np.int64),
                None,
                np.arange(n, dtype=np.int64),
            )
        hit_positions: List[int] = []
        rows: List[np.ndarray] = []
        miss_positions: List[int] = []
        node_list = nodes.tolist()
        time_list = times.tolist()
        for index in range(n):
            value = store.probe(node_list[index], time_list[index])
            if value is None:
                miss_positions.append(index)
            else:
                hit_positions.append(index)
                rows.append(value)
        store.flush_charges("lookup")
        hit_rows = np.stack(rows).astype(np.float32, copy=False) if rows else None
        return (
            np.asarray(hit_positions, dtype=np.int64),
            hit_rows,
            np.asarray(miss_positions, dtype=np.int64),
        )

    def store_embeddings(
        self, nodes: np.ndarray, times: np.ndarray, rows: np.ndarray
    ) -> None:
        """Insert freshly computed embedding rows at their query event times."""
        store = self._stores.get("embedding")
        if store is None or len(nodes) == 0:
            return
        row_nbytes = int(rows.shape[1]) * 4
        node_list = nodes.tolist()
        time_list = times.tolist()
        for index in range(len(node_list)):
            store.put(node_list[index], rows[index].copy(), time_list[index], row_nbytes)
        store.flush_charges("update")

    # -- temporal-neighbourhood samples ------------------------------------

    def sample(
        self,
        sampler: TemporalNeighborSampler,
        nodes: np.ndarray,
        times: np.ndarray,
        k: int,
    ) -> NeighborhoodSample:
        """Cache-fronted batched temporal-neighbourhood query.

        Per query row: serve the cached sample row when one is valid under
        the staleness bound, otherwise fall through to ``sampler`` for the
        miss rows only (which charges the sampler's CPU cost for exactly
        those rows).  With zero hits the sampler is invoked on the original
        arrays, so the draw sequence -- and therefore the RNG stream -- is
        byte-identical to uncached execution.
        """
        store = self._stores.get("sample")
        if store is None:
            return sampler.sample(nodes, times, k)
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        n = len(nodes)
        node_list = nodes.tolist()
        time_list = times.tolist()
        hits: List[Tuple[int, Tuple[np.ndarray, ...]]] = []
        miss_positions: List[int] = []
        for index in range(n):
            value = store.probe(node_list[index], time_list[index])
            if value is None or value[0].shape[0] != k:
                miss_positions.append(index)
            else:
                hits.append((index, value))
        if not hits:
            sample = sampler.sample(nodes, times, k)
            self._insert_sample_rows(store, node_list, time_list, range(n), sample, k)
            store.flush_charges("sample")
            return sample
        neighbor_ids = np.zeros((n, k), dtype=np.int64)
        neighbor_times = np.zeros((n, k), dtype=np.float64)
        event_indices = np.zeros((n, k), dtype=np.int64)
        mask = np.zeros((n, k), dtype=np.float32)
        for index, (ids_row, times_row, events_row, mask_row) in hits:
            neighbor_ids[index] = ids_row
            neighbor_times[index] = times_row
            event_indices[index] = events_row
            mask[index] = mask_row
        if miss_positions:
            miss_idx = np.asarray(miss_positions, dtype=np.int64)
            sub = sampler.sample(nodes[miss_idx], times[miss_idx], k)
            neighbor_ids[miss_idx] = sub.neighbor_ids
            neighbor_times[miss_idx] = sub.neighbor_times
            event_indices[miss_idx] = sub.event_indices
            mask[miss_idx] = sub.mask
            self._insert_sample_rows(
                store, node_list, time_list, miss_positions, sub, k, remap=True
            )
        store.flush_charges("sample")
        return NeighborhoodSample(neighbor_ids, neighbor_times, event_indices, mask)

    @staticmethod
    def _insert_sample_rows(
        store: DeviceResidentCache,
        node_list: List[int],
        time_list: List[float],
        positions: Iterable[int],
        sample: NeighborhoodSample,
        k: int,
        remap: bool = False,
    ) -> None:
        """Insert one sample row per (miss) query position.

        ``remap=True`` means row ``j`` of ``sample`` corresponds to the
        ``j``-th listed position (a miss-subset sample); otherwise positions
        index ``sample`` directly.
        """
        row_nbytes = k * (8 + 8 + 8 + 4)
        for j, position in enumerate(positions):
            row = j if remap else position
            value = (
                sample.neighbor_ids[row].copy(),
                sample.neighbor_times[row].copy(),
                sample.event_indices[row].copy(),
                sample.mask[row].copy(),
            )
            store.put(node_list[position], value, time_list[position], row_nbytes)

    # -- recurrent memory rows ---------------------------------------------

    def lookup_memory(
        self, nodes: np.ndarray, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Admit per-node memory rows; returns ``(hit_indices, miss_indices)``.

        Values are presence-only: the functional row data comes from the
        model's host mirror (cached rows are exact copies by the
        write-through contract), so hits change transfer cost, not numerics.
        """
        store = self._stores.get("memory")
        n = len(nodes)
        if store is None:
            return (np.empty(0, dtype=np.int64), np.arange(n, dtype=np.int64))
        results = store.probe_many(nodes.tolist(), times.tolist())
        store.flush_charges("lookup")
        hit_positions = [index for index in range(n) if results[index] is not None]
        miss_positions = [index for index in range(n) if results[index] is None]
        return (
            np.asarray(hit_positions, dtype=np.int64),
            np.asarray(miss_positions, dtype=np.int64),
        )

    def store_memory_rows(
        self, nodes: np.ndarray, times: np.ndarray, row_nbytes: int
    ) -> None:
        """Register device-resident memory rows (write-through on update)."""
        store = self._stores.get("memory")
        if store is None or len(nodes) == 0:
            return
        node_list = np.asarray(nodes).tolist()
        time_list = np.asarray(times, dtype=np.float64).tolist()
        store.put_many(node_list, True, time_list, int(row_nbytes))
        store.flush_charges("update")

    # -- invalidation ------------------------------------------------------

    def observe_events(
        self, batch: EventStream, kinds: Optional[Sequence[str]] = None
    ) -> int:
        """Invalidate entries touched by a batch of incoming graph events.

        Every event ``(u, v, t)`` changes the temporal neighbourhood of both
        endpoints, so their sample and embedding entries must not be served
        afterwards.  ``kinds`` restricts the sweep (TGN skips ``"memory"``:
        its writes overwrite the touched rows in the same iteration).
        Returns the number of dropped entries.
        """
        return self.invalidate_nodes(batch.touched_nodes().tolist(), kinds=kinds)

    def invalidate_nodes(
        self, nodes: Iterable[int], kinds: Optional[Sequence[str]] = None
    ) -> int:
        """Invalidate the given nodes' entries across (selected) stores."""
        nodes = list(nodes)
        dropped = 0
        for kind, store in self._stores.items():
            if kinds is not None and kind not in kinds:
                continue
            dropped += store.invalidate(nodes)
            store.flush_charges("invalidate")
        return dropped

    def flush(self) -> int:
        """Drop every entry across every store (replica cold start / spin-down).

        The autoscaler calls this when a replica leaves the fleet: its
        device memory is released, so whatever the caches held is gone and
        the replica's next activation starts cold -- the cache-warm-up half
        of the modeled cold-start cost.  Returns the number of dropped
        entries; the invalidation work is charged to the owning machine.
        """
        dropped = 0
        for store in self._stores.values():
            dropped += store.flush()
            store.flush_charges("flush")
        return dropped

    # -- telemetry ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Merged + per-kind counters, ready for :class:`ServingReport`."""
        merged = CacheStats()
        by_kind: Dict[str, Dict[str, Any]] = {}
        for kind, store in self._stores.items():
            merged.merge(store.stats)
            by_kind[kind] = store.stats.as_dict()
        payload: Dict[str, Any] = {
            "policy": self.policy_name,
            "capacity_mb": self.capacity_mb,
            "staleness_ms": self.staleness_ms,
            "kinds": list(self._stores),
        }
        payload.update(merged.as_dict())
        payload["by_kind"] = by_kind
        return payload


def merge_cache_stats(reports: Sequence[Optional[Dict[str, Any]]]) -> Optional[Dict[str, Any]]:
    """Merge per-replica/per-shard cache stat dicts into one report view.

    Counter keys are summed, ``hit_rate`` is recomputed from the merged
    totals, and configuration keys (policy, staleness) are taken from the
    first non-empty report.  ``capacity_mb`` sums each report's own
    capacity and ``kinds`` is the ordered union across reports, so
    heterogeneous replica sets (mixed capacities, models with different
    entry kinds) merge faithfully -- on a homogeneous fleet both reduce to
    the first report's values scaled by the cache count.  ``bytes_peak``
    takes the max across replicas (per-replica peaks happen at different
    times, so a sum is not a peak of anything); the summed footprint bound
    survives as ``bytes_peak_sum``.  Returns ``None`` when nothing cached.
    """
    live = [report for report in reports if report]
    if not live:
        return None
    kinds: List[str] = []
    for report in live:
        for kind in report.get("kinds", []):
            if kind not in kinds:
                kinds.append(kind)
    merged: Dict[str, Any] = {
        "policy": live[0].get("policy", ""),
        "capacity_mb": sum(report.get("capacity_mb", 0.0) for report in live),
        "staleness_ms": live[0].get("staleness_ms", 0.0),
        "kinds": kinds,
        "caches": len(live),
    }
    counters = (
        "lookups",
        "hits",
        "misses",
        "stale_rejects",
        "inserts",
        "evictions",
        "stale_evictions",
        "invalidations",
        "bytes_current",
        "entries",
    )
    for key in counters:
        merged[key] = sum(int(report.get(key, 0)) for report in live)
    merged["bytes_peak"] = max(int(report.get("bytes_peak", 0)) for report in live)
    merged["bytes_peak_sum"] = sum(
        int(report.get("bytes_peak_sum") or report.get("bytes_peak", 0)) for report in live
    )
    merged["hit_rate"] = (
        round(merged["hits"] / merged["lookups"], 4) if merged["lookups"] else 0.0
    )
    return merged


def make_model_cache(
    model: Any,
    policy: str = "lru",
    capacity_mb: float = 64.0,
    staleness_ms: float = 0.0,
    cost_model: Optional[CacheCostModel] = None,
) -> ModelCache:
    """Build a :class:`ModelCache` for ``model`` and attach it.

    The model must opt in via ``supports_caching`` and declare its entry
    kinds in ``cache_kinds`` (see :class:`repro.models.base.DGNNModel`).
    The degree-weighted policy reads node degrees from the model's
    temporal-neighbour sampler when it has one.
    """
    if not getattr(model, "supports_caching", False):
        raise TypeError(
            f"{type(model).__name__} does not support request caching; "
            "only models declaring supports_caching/cache_kinds can serve "
            "with --cache"
        )
    kinds = tuple(getattr(model, "cache_kinds", ()))
    if not kinds:
        raise TypeError(
            f"{type(model).__name__} declares supports_caching but no cache_kinds"
        )
    degree_of: Optional[Callable[[int], float]] = None
    sampler = getattr(model, "sampler", None)
    if sampler is not None and hasattr(sampler, "total_degree"):
        degree_of = sampler.total_degree
    cache = ModelCache(
        model.machine,
        model.compute_device,
        kinds,
        policy=policy,
        capacity_mb=capacity_mb,
        staleness_ms=staleness_ms,
        cost_model=cost_model,
        degree_of=degree_of,
    )
    model.attach_cache(cache)
    return cache
