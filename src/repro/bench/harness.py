"""Benchmark harness: seeded repetitions, wall-clock medians, throughput.

The harness runs each scenario ``reps`` times.  Every repetition rebuilds
the full workload from the same seed, so the *simulated* outputs (machine
time, event count) are identical across reps -- the harness asserts that --
while wall-clock varies with machine noise; the median and interquartile
range are what get reported and gated on.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .scenarios import SCENARIOS, Scenario


@dataclass(frozen=True)
class ScenarioResult:
    """Measured performance of one scenario over ``reps`` repetitions.

    ``extras`` carries scenario-specific *simulated* metrics (p99 latency,
    cache hit rate, ...) -- deterministic values the scenario returned next
    to its machine, not wall-clock measurements.
    """

    name: str
    description: str
    wall_ms: float
    wall_iqr_ms: float
    sim_ms: float
    events: int
    events_per_sec: float
    reps: int
    seed: int
    quick: bool
    #: Simulated metrics must be identical across reps; keys prefixed
    #: ``wall_`` are wall-clock measurements the scenario took itself
    #: (e.g. an interleaved A/B speedup) and are aggregated by median.
    extras: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchResult:
    """One full benchmark run."""

    scenarios: List[ScenarioResult]
    quick: bool
    seed: int

    def scenario(self, name: str) -> Optional[ScenarioResult]:
        for result in self.scenarios:
            if result.name == name:
                return result
        return None


def _iqr(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    quartiles = statistics.quantiles(values, n=4, method="inclusive")
    return quartiles[2] - quartiles[0]


def run_scenario(
    scenario: Scenario, seed: int = 0, reps: int = 3, quick: bool = False
) -> ScenarioResult:
    """Run one scenario ``reps`` times and aggregate the measurements."""
    if reps < 1:
        raise ValueError("reps must be positive")
    wall_times: List[float] = []
    throughputs: List[float] = []
    sim_ms: Optional[float] = None
    events: Optional[int] = None
    extras: Optional[Dict[str, float]] = None
    wall_extras: Dict[str, List[float]] = {}
    for _ in range(reps):
        start = time.perf_counter()
        outcome = scenario.fn(seed, quick)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        if isinstance(outcome, tuple):
            machine, rep_extras = outcome
        else:
            machine, rep_extras = (outcome, {})
        wall_times.append(elapsed_ms)
        rep_sim = machine.host_time_ms
        rep_events = machine.event_count
        # ``wall_``-prefixed extras are the scenario's own wall-clock
        # measurements (interleaved A/B timings): exempt from the
        # determinism check, aggregated by median like ``wall_ms`` itself.
        rep_extras = dict(rep_extras)
        for key in list(rep_extras):
            if key.startswith("wall_"):
                wall_extras.setdefault(key, []).append(float(rep_extras.pop(key)))
        if sim_ms is None:
            sim_ms, events, extras = (rep_sim, rep_events, rep_extras)
        elif rep_sim != sim_ms or rep_events != events or rep_extras != extras:
            raise RuntimeError(
                f"scenario {scenario.name!r} is not deterministic across "
                f"repetitions: sim {sim_ms} vs {rep_sim} ms, "
                f"{events} vs {rep_events} events, extras {extras} vs "
                f"{rep_extras} -- a seeded workload must reproduce its "
                "simulated results exactly"
            )
        throughputs.append(rep_events / (elapsed_ms * 1e-3) if elapsed_ms > 0 else 0.0)
    assert sim_ms is not None and events is not None
    merged_extras = dict(extras or {})
    for key, values in wall_extras.items():
        merged_extras[key] = round(statistics.median(values), 3)
    return ScenarioResult(
        name=scenario.name,
        description=scenario.description,
        wall_ms=statistics.median(wall_times),
        wall_iqr_ms=_iqr(wall_times),
        sim_ms=sim_ms,
        events=events,
        events_per_sec=statistics.median(throughputs),
        reps=reps,
        seed=seed,
        quick=quick,
        extras=merged_extras,
    )


def run_bench(
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    reps: Optional[int] = None,
    quick: bool = False,
) -> BenchResult:
    """Run the (optionally filtered) scenario suite.

    ``reps`` defaults to 3 in quick mode and 5 otherwise.
    """
    if reps is None:
        reps = 3 if quick else 5
    names = list(scenarios) if scenarios else list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s) {unknown}; available: {', '.join(SCENARIOS)}")
    results = [run_scenario(SCENARIOS[name], seed=seed, reps=reps, quick=quick) for name in names]
    return BenchResult(scenarios=results, quick=quick, seed=seed)
