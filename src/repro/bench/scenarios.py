"""The benchmark scenario suite.

Every scenario is a self-contained callable: it builds a fresh machine,
dataset and model from its seed, runs one representative workload, and
returns the machine so the harness can read simulated time and event
throughput off it.  Scenarios accept a ``quick`` flag that shrinks the
workload (tiny dataset scale, shorter serving windows) for the CI perf gate;
the full configuration is what local ``repro-dgnn bench`` runs record in the
``BENCH_<n>.json`` trajectory.

Scenario bodies deliberately reuse the same building blocks as the
``serving`` and ``scaling`` experiments (same models, policies, arrival
processes), so a wall-clock regression here predicts a slowdown of the real
experiment suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..cache import make_model_cache
from ..datasets import load as load_dataset
from ..hw.machine import Machine
from ..models.tgat import TGAT, TGATConfig
from ..serve import (
    InferenceServer,
    ScaleOutServer,
    build_replicas,
    generate_requests,
    make_arrival_process,
    make_policy,
    make_router,
)


@dataclass(frozen=True)
class Scenario:
    """One benchmark scenario: a name, a description, and a workload body.

    The body is ``fn(seed, quick) -> Machine`` -- or
    ``fn(seed, quick) -> (Machine, extras)`` where ``extras`` is a flat dict
    of scenario-specific *simulated* metrics (p99 latency, cache hit rate,
    ...).  The harness times the call, reads ``host_time_ms`` /
    ``event_count`` off the machine, and carries the extras (which must be
    deterministic across repetitions) into the report.
    """

    name: str
    description: str
    fn: Callable[[int, bool], Machine]


def _tgat(machine: Machine, dataset, seed: int, num_neighbors: int = 10,
          batch_size: int = 64) -> TGAT:
    with machine.activate():
        return TGAT(
            machine,
            dataset,
            TGATConfig(num_neighbors=num_neighbors, batch_size=batch_size, seed=seed),
        )


def _training_iteration(seed: int, quick: bool) -> Machine:
    """Offline iteration loop: consecutive mini-batches, blocking execution."""
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.cpu_gpu()
    model = _tgat(machine, dataset, seed)
    iterations = 3 if quick else 8
    with machine.activate():
        first = True
        for index, batch in enumerate(model.iteration_batches()):
            if first:
                model.warm_up(batch)
                first = False
            model.inference_iteration(batch)
            if index + 1 >= iterations:
                break
    return machine


def _serving(seed: int, quick: bool, overlap: bool, cached: bool = False):
    """Online serving under Poisson load (the ``serving`` experiment's core).

    The ``cached`` variants run the *identical* workload and policy -- one
    shared body guarantees the comparability the bench table claims -- plus
    an attached LRU cache whose staleness bound spans the dataset and a warm
    pass before the measured window, so the measured window serves at a high
    hit rate.  Extras carry the run's simulated p99 (all variants) and the
    hit rate / peak occupancy (cached variants): at a warm nonzero staleness
    bound the cached overlap scenario beats its uncached counterpart on p99
    and on simulated-events-per-wall-second throughput.
    """
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.cpu_gpu()
    model = _tgat(machine, dataset, seed)
    if cached:
        span_start, span_end = dataset.stream.time_span
        make_model_cache(
            model,
            policy="lru",
            capacity_mb=32.0,
            staleness_ms=max((span_end - span_start) * 2.0, 1.0),
        )
    arrivals = make_arrival_process("poisson", 400.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=80.0 if quick else 250.0,
        events_per_request=1,
        slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0, slo_ms=50.0)
    server = InferenceServer(model, policy, overlap=overlap)
    label = "bench-serving-" + ("overlap" if overlap else "blocking")
    if cached:
        label += "-cached"
        server.serve(requests, label=f"{label}-warm", arrival_name="poisson")
    report = server.serve(requests, label=label, arrival_name="poisson", warm_up=not cached)
    extras = {
        "p99_ms": round(report.total_latency().p99_ms, 3) if report.completed else 0.0,
    }
    if cached:
        cache = report.cache or {}
        extras["cache_hit_rate"] = cache.get("hit_rate", 0.0)
        extras["cache_peak_mb"] = round(cache.get("bytes_peak", 0) / 1e6, 3)
    return (machine, extras)


def _scaling(seed: int, quick: bool, spec: str, num_gpus: int) -> Machine:
    """Replicated scale-out serving (the ``scaling`` experiment's core)."""
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.from_spec(spec)
    config = TGATConfig(num_neighbors=10, batch_size=64, seed=seed)
    with machine.activate():
        replicas = build_replicas(
            machine,
            lambda: TGAT(machine, dataset, config),
            machine.gpus[:num_gpus],
        )
    arrivals = make_arrival_process("poisson", 500.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=80.0 if quick else 250.0,
        events_per_request=2,
        slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0, slo_ms=50.0)
    server = ScaleOutServer(replicas, policy, make_router("round-robin", len(replicas)))
    server.serve(requests, label=f"bench-scaling-{num_gpus}gpu", arrival_name="poisson")
    return machine


def _scheduler_throughput(seed: int, quick: bool, record_events: bool) -> Machine:
    """Pure scheduling-engine throughput: no numerics, no model, no RNG.

    Drives the machine directly with the batched :meth:`Machine.launch_kernels`
    charging API plus transfers and synchronisations -- the exact inner loops
    the hot-path optimization work targets -- so this scenario isolates the
    simulator's own speed from numpy numerics and sampling costs that
    dominate the model-level scenarios.  The ``record_events=False`` variant
    measures the same schedule with profiling's event stream disabled
    (scheduling and timelines are byte-identical either way; only the event
    log is skipped).
    """
    machine = Machine.from_spec("2xA100-pcie", record_events=record_events)
    # Quick mode still runs enough rounds (~10 ms wall) that the CI gate's
    # 25% threshold sits well above timer/runner jitter.
    rounds = 400 if quick else 1500
    cpu = machine.cpu
    gpus = machine.gpus
    with machine.activate():
        machine.initialize_gpu(model_bytes=1 << 20, device=gpus[0])
        machine.initialize_gpu(model_bytes=1 << 20, device=gpus[1])
        for index in range(rounds):
            gpu = gpus[index % len(gpus)]
            # A homogeneous run of small kernels (the RNN-step / per-head
            # pattern), one host preprocessing step, one input upload.
            machine.launch_kernels(gpu, "bench_gemm", 8, 2.0e6, 64e3)
            machine.host_work("bench_preprocess", 0.02)
            machine.transfer(cpu, gpu, 32768, non_blocking=True)
            if index % 10 == 9:
                machine.synchronize()
        machine.synchronize(name="final")
    return machine


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "training_iteration",
            "offline TGAT mini-batch iteration loop (blocking)",
            _training_iteration,
        ),
        Scenario(
            "serving_blocking",
            "online serving, blocking execution, Poisson arrivals",
            lambda seed, quick: _serving(seed, quick, overlap=False),
        ),
        Scenario(
            "serving_overlap",
            "online serving, sampling/compute overlap, Poisson arrivals",
            lambda seed, quick: _serving(seed, quick, overlap=True),
        ),
        Scenario(
            "serving_blocking_cached",
            "online serving, blocking execution, warm staleness-bounded cache",
            lambda seed, quick: _serving(seed, quick, overlap=False, cached=True),
        ),
        Scenario(
            "serving_overlap_cached",
            "online serving, overlap + warm staleness-bounded cache",
            lambda seed, quick: _serving(seed, quick, overlap=True, cached=True),
        ),
        Scenario(
            "scaling_1gpu",
            "replicated serving on 1xA100",
            lambda seed, quick: _scaling(seed, quick, "1xA100", 1),
        ),
        Scenario(
            "scaling_2gpu",
            "replicated serving on 2xA100-pcie",
            lambda seed, quick: _scaling(seed, quick, "2xA100-pcie", 2),
        ),
        Scenario(
            "scaling_4gpu",
            "replicated serving on 4xA100-pcie",
            lambda seed, quick: _scaling(seed, quick, "4xA100-pcie", 4),
        ),
        Scenario(
            "scheduler_throughput",
            "raw scheduling engine: batched kernels + transfers, events on",
            lambda seed, quick: _scheduler_throughput(seed, quick, True),
        ),
        Scenario(
            "scheduler_throughput_noprofile",
            "raw scheduling engine with event recording disabled",
            lambda seed, quick: _scheduler_throughput(seed, quick, False),
        ),
    )
}


def available_scenarios() -> List[str]:
    return list(SCENARIOS)
