"""The benchmark scenario suite.

Every scenario is a self-contained callable: it builds a fresh machine,
dataset and model from its seed, runs one representative workload, and
returns the machine so the harness can read simulated time and event
throughput off it.  Scenarios accept a ``quick`` flag that shrinks the
workload (tiny dataset scale, shorter serving windows) for the CI perf gate;
the full configuration is what local ``repro-dgnn bench`` runs record in the
``BENCH_<n>.json`` trajectory.

Scenario bodies deliberately reuse the same building blocks as the
``serving`` and ``scaling`` experiments (same models, policies, arrival
processes), so a wall-clock regression here predicts a slowdown of the real
experiment suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..cache import backfill_embeddings, make_model_cache
from ..cache.policy import make_eviction_policy
from ..cache.store import DeviceResidentCache
from ..datasets import load as load_dataset
from ..hw.cluster import Cluster
from ..hw.machine import Machine
from ..models.tgat import TGAT, TGATConfig
from ..serve import (
    AutoscaleConfig,
    Autoscaler,
    ClusterServer,
    InferenceServer,
    ScaleOutServer,
    build_cluster_replicas,
    build_replicas,
    generate_requests,
    make_arrival_process,
    make_fidelity_controller,
    make_policy,
    make_router,
)


@dataclass(frozen=True)
class Scenario:
    """One benchmark scenario: a name, a description, and a workload body.

    The body is ``fn(seed, quick) -> Machine`` -- or
    ``fn(seed, quick) -> (Machine, extras)`` where ``extras`` is a flat dict
    of scenario-specific *simulated* metrics (p99 latency, cache hit rate,
    ...).  The harness times the call, reads ``host_time_ms`` /
    ``event_count`` off the machine, and carries the extras (which must be
    deterministic across repetitions) into the report.
    """

    name: str
    description: str
    fn: Callable[[int, bool], Machine]


def _tgat(machine: Machine, dataset, seed: int, num_neighbors: int = 10,
          batch_size: int = 64) -> TGAT:
    with machine.activate():
        return TGAT(
            machine,
            dataset,
            TGATConfig(num_neighbors=num_neighbors, batch_size=batch_size, seed=seed),
        )


def _training_iteration(seed: int, quick: bool) -> Machine:
    """Offline iteration loop: consecutive mini-batches, blocking execution."""
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.cpu_gpu()
    model = _tgat(machine, dataset, seed)
    iterations = 3 if quick else 8
    with machine.activate():
        first = True
        for index, batch in enumerate(model.iteration_batches()):
            if first:
                model.warm_up(batch)
                first = False
            model.inference_iteration(batch)
            if index + 1 >= iterations:
                break
    return machine


def _serving(seed: int, quick: bool, overlap: bool, cached: bool = False,
             backend: str = "numeric"):
    """Online serving under Poisson load (the ``serving`` experiment's core).

    The ``cached`` variants run the *identical* workload and policy -- one
    shared body guarantees the comparability the bench table claims -- plus
    an attached LRU cache whose staleness bound spans the dataset and a warm
    pass before the measured window, so the measured window serves at a high
    hit rate.  Extras carry the run's simulated p99 (all variants) and the
    hit rate / peak occupancy (cached variants): at a warm nonzero staleness
    bound the cached overlap scenario beats its uncached counterpart on p99
    and on simulated-events-per-wall-second throughput.

    ``backend`` selects the execution backend; the ``shape`` variant runs
    the identical workload value-free and must report the identical
    simulated extras (p99), only faster per wall-second.
    """
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.cpu_gpu(backend=backend)
    model = _tgat(machine, dataset, seed)
    if cached:
        span_start, span_end = dataset.stream.time_span
        make_model_cache(
            model,
            policy="lru",
            capacity_mb=32.0,
            staleness_ms=max((span_end - span_start) * 2.0, 1.0),
        )
    arrivals = make_arrival_process("poisson", 400.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=80.0 if quick else 250.0,
        events_per_request=1,
        slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    server = InferenceServer(model, policy, overlap=overlap)
    label = "bench-serving-" + ("overlap" if overlap else "blocking")
    if cached:
        label += "-cached"
        server.serve(requests, label=f"{label}-warm", arrival_name="poisson")
    report = server.serve(requests, label=label, arrival_name="poisson", warm_up=not cached)
    extras = {
        "p99_ms": round(report.total_latency().p99_ms, 3) if report.completed else 0.0,
    }
    if cached:
        cache = report.cache or {}
        extras["cache_hit_rate"] = cache.get("hit_rate", 0.0)
        extras["cache_peak_mb"] = round(cache.get("bytes_peak", 0) / 1e6, 3)
    return (machine, extras)


def _serving_traced(seed: int, quick: bool):
    """Overlapped serving with the span tracer and metrics registry attached.

    Identical workload to ``serving_overlap`` plus the full observability
    path: per-request spans, event-slice recording, dispatch/completion
    metrics and a trace build at the end.  A wall-clock regression here
    against ``serving_overlap`` isolates the tracing layer's own overhead
    (which must stay small -- the hot path only pays span bookkeeping, never
    extra simulated work, so the simulated extras match the untraced
    scenario exactly).  Extras carry the run's p99 plus the span and
    trace-event counts, all deterministic.
    """
    from ..obs import MetricsRegistry, Tracer, build_trace

    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.cpu_gpu()
    model = _tgat(machine, dataset, seed)
    arrivals = make_arrival_process("poisson", 400.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=80.0 if quick else 250.0,
        events_per_request=1,
        slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    tracer = Tracer().attach(machine)
    metrics = MetricsRegistry()
    server = InferenceServer(
        model, policy, overlap=True, tracer=tracer, metrics=metrics
    )
    report = server.serve(
        requests, label="bench-serving-traced", arrival_name="poisson"
    )
    payload = build_trace(tracer, report=report, label="bench-serving-traced")
    extras = {
        "p99_ms": round(report.total_latency().p99_ms, 3) if report.completed else 0.0,
        "spans": float(len(tracer.spans)),
        "trace_events": float(len(payload["traceEvents"])),
    }
    return (machine, extras)


def _serving_fidelity(seed: int, quick: bool):
    """Adaptive-fidelity serving under overload (the degradation hot path).

    Same body shape as :func:`_serving` but at ~2x the calibrated capacity
    under the slo policy with the fidelity controller attached, so the
    measured window spends most dispatches degraded: every batch pays the
    controller consult, the fan-out rescale and the cache staleness
    override.  A wall-clock regression here isolates the fidelity layer's
    own overhead.  Extras carry the simulated p99 and the (deterministic)
    fidelity debt and degraded-batch count.
    """
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.cpu_gpu()
    model = _tgat(machine, dataset, seed, batch_size=8)
    span_start, span_end = dataset.stream.time_span
    make_model_cache(
        model,
        policy="lru",
        capacity_mb=32.0,
        staleness_ms=max((span_end - span_start) * 2.0, 1.0),
    )
    arrivals = make_arrival_process("poisson", 3000.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=80.0 if quick else 250.0,
        events_per_request=1,
        slo_ms=20.0,
    )
    policy = make_policy("slo", max_batch_size=8, batch_timeout_ms=2.0, slo_ms=20.0)
    server = InferenceServer(
        model, policy, fidelity=make_fidelity_controller()
    )
    report = server.serve(requests, label="bench-serving-fidelity", arrival_name="poisson")
    snapshot = report.fidelity or {}
    extras = {
        "p99_ms": round(report.total_latency().p99_ms, 3) if report.completed else 0.0,
        "fidelity_debt": float(snapshot.get("debt_score", 0.0)),
        "degraded_batches": float(snapshot.get("degraded_batches", 0)),
    }
    return (machine, extras)


def _serving_backfill(seed: int, quick: bool):
    """Cache-backfilled serving: proactive warming before the first request.

    The :func:`_serving` cached variants warm by *replaying the workload*;
    this one instead backfills the hottest nodes' embeddings through
    :func:`~repro.cache.backfill_embeddings` (ranking, recursive embedding
    compute, batched inserts -- the exact pass cluster warm-up and
    autoscaling cold starts run), then serves the measured window against
    that proactively-warmed cache.  Extras carry the backfill's simulated
    cost alongside the serving hit rate and p99.
    """
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.cpu_gpu()
    model = _tgat(machine, dataset, seed, batch_size=8)
    span_start, span_end = dataset.stream.time_span
    make_model_cache(
        model,
        policy="degree",
        capacity_mb=32.0,
        staleness_ms=max((span_end - span_start) * 2.0, 1.0),
    )
    backfill = backfill_embeddings(model, top_k=64 if quick else 256)
    arrivals = make_arrival_process("poisson", 400.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=80.0 if quick else 250.0,
        events_per_request=1,
        slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    server = InferenceServer(model, policy)
    report = server.serve(requests, label="bench-serving-backfill", arrival_name="poisson")
    cache = report.cache or {}
    extras = {
        "p99_ms": round(report.total_latency().p99_ms, 3) if report.completed else 0.0,
        "cache_hit_rate": cache.get("hit_rate", 0.0),
        "backfill_nodes": float(backfill.computed),
        "backfill_sim_ms": round(backfill.elapsed_ms, 3),
    }
    return (machine, extras)


def _scaling(seed: int, quick: bool, spec: str, num_gpus: int) -> Machine:
    """Replicated scale-out serving (the ``scaling`` experiment's core)."""
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.from_spec(spec)
    config = TGATConfig(num_neighbors=10, batch_size=64, seed=seed)
    with machine.activate():
        replicas = build_replicas(
            machine,
            lambda: TGAT(machine, dataset, config),
            machine.gpus[:num_gpus],
        )
    arrivals = make_arrival_process("poisson", 500.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=80.0 if quick else 250.0,
        events_per_request=2,
        slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    server = ScaleOutServer(replicas, policy, make_router("round-robin", len(replicas)))
    server.serve(requests, label=f"bench-scaling-{num_gpus}gpu", arrival_name="poisson")
    return machine


def _scheduler_throughput(seed: int, quick: bool, record_events: bool,
                          backend: str = "numeric") -> Machine:
    """Pure scheduling-engine throughput: no numerics, no model, no RNG.

    Drives the machine directly with the batched :meth:`Machine.launch_kernels`
    charging API plus transfers and synchronisations -- the exact inner loops
    the hot-path optimization work targets -- so this scenario isolates the
    simulator's own speed from numpy numerics and sampling costs that
    dominate the model-level scenarios.  The ``record_events=False`` variant
    measures the same schedule with profiling's event stream disabled
    (scheduling and timelines are byte-identical either way; only the event
    log is skipped).  The ``backend="shape"`` variant pins down that backend
    selection never perturbs the scheduling engine itself: this scenario
    drives the charging APIs directly, so its timeline must be identical
    under either backend.
    """
    machine = Machine.from_spec(
        "2xA100-pcie", record_events=record_events, backend=backend
    )
    # Quick mode still runs enough rounds (~10 ms wall) that the CI gate's
    # 25% threshold sits well above timer/runner jitter.
    rounds = 400 if quick else 1500
    cpu = machine.cpu
    gpus = machine.gpus
    with machine.activate():
        machine.initialize_gpu(model_bytes=1 << 20, device=gpus[0])
        machine.initialize_gpu(model_bytes=1 << 20, device=gpus[1])
        for index in range(rounds):
            gpu = gpus[index % len(gpus)]
            # A homogeneous run of small kernels (the RNN-step / per-head
            # pattern), one host preprocessing step, one input upload.
            machine.launch_kernels(gpu, "bench_gemm", 8, 2.0e6, 64e3)
            machine.host_work("bench_preprocess", 0.02)
            machine.transfer(cpu, gpu, 32768, non_blocking=True)
            if index % 10 == 9:
                machine.synchronize()
        machine.synchronize(name="final")
    return machine


def _speedup_serving_run(seed: int, quick: bool, backend: str):
    """One production-sized serving run for the backend A/B (see below)."""
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    machine = Machine.cpu_gpu(backend=backend)
    model = _tgat(machine, dataset, seed, num_neighbors=20, batch_size=64)
    arrivals = make_arrival_process("poisson", 1500.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=80.0 if quick else 250.0,
        events_per_request=1,
        slo_ms=100.0,
    )
    policy = make_policy("timeout", max_batch_size=64, batch_timeout_ms=4.0)
    server = InferenceServer(model, policy, overlap=True)
    report = server.serve(
        requests, label=f"bench-shape-speedup-{backend}", arrival_name="poisson"
    )
    return machine, report


def _shape_speedup(seed: int, quick: bool):
    """Interleaved numeric-vs-shape A/B on a production-sized serving run.

    Runs the identical overlapped serving workload once per backend (the
    harness's repetitions interleave the pairs), times each run, and checks
    timeline equivalence before reporting: identical event counts, simulated
    clocks and p99.  Unlike the default serving scenarios -- whose small
    batches are scheduler-bound -- this one uses saturating arrivals and
    production batch sizes (k=20, max batch 64), where GEMM/attention
    numerics dominate wall-clock and the shape backend's value-free
    execution pays off.  The ``wall_*`` extras carry the A/B result.
    """
    start = time.perf_counter()
    numeric_machine, numeric_report = _speedup_serving_run(seed, quick, "numeric")
    numeric_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    shape_machine, shape_report = _speedup_serving_run(seed, quick, "shape")
    shape_ms = (time.perf_counter() - start) * 1e3
    numeric_p99 = numeric_report.total_latency().p99_ms if numeric_report.completed else 0.0
    shape_p99 = shape_report.total_latency().p99_ms if shape_report.completed else 0.0
    if (
        numeric_machine.event_count != shape_machine.event_count
        or numeric_machine.host_time_ms != shape_machine.host_time_ms
        or numeric_p99 != shape_p99
    ):
        raise RuntimeError(
            "shape backend diverged from numeric on the speedup workload: "
            f"events {numeric_machine.event_count} vs {shape_machine.event_count}, "
            f"sim {numeric_machine.host_time_ms} vs {shape_machine.host_time_ms} ms, "
            f"p99 {numeric_p99} vs {shape_p99} ms"
        )
    extras = {
        "p99_ms": round(shape_p99, 3),
        "wall_numeric_ms": round(numeric_ms, 3),
        "wall_shape_ms": round(shape_ms, 3),
        "wall_speedup": round(numeric_ms / shape_ms, 3) if shape_ms > 0 else 0.0,
    }
    return (shape_machine, extras)


def _cluster_serving_run(seed: int, quick: bool, backend: str, autoscale: bool):
    """One cluster serving run on ``2n-2xA100-eth`` (4 replicas, 2 nodes)."""
    dataset = load_dataset("wikipedia", scale="tiny" if quick else "small")
    cluster = Cluster("2n-2xA100-eth", backend=backend)
    config = TGATConfig(num_neighbors=10, batch_size=64, seed=seed)
    replicas, nodes = build_cluster_replicas(
        cluster, lambda machine: TGAT(machine, dataset, config)
    )
    duration_ms = 80.0 if quick else 250.0
    if autoscale:
        arrival_name = "flash-crowd"
        arrivals = make_arrival_process(
            arrival_name, 400.0, seed=seed,
            flash_at_ms=duration_ms * 0.3,
            flash_duration_ms=duration_ms * 0.4,
            flash_multiplier=6.0,
        )
    else:
        arrival_name = "poisson"
        arrivals = make_arrival_process(arrival_name, 500.0, seed=seed)
    requests = generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=duration_ms,
        events_per_request=2,
        slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    autoscaler = None
    if autoscale:
        autoscaler = Autoscaler(AutoscaleConfig(
            min_replicas=1,
            max_replicas=len(replicas),
            slo_ms=50.0,
            up_cooldown_ms=10.0,
            down_cooldown_ms=40.0,
        ))
    server = ClusterServer(
        cluster, replicas, nodes, policy,
        make_router("least-latency", len(replicas)), autoscaler=autoscaler,
    )
    label = "bench-cluster-" + ("autoscale" if autoscale else "static")
    report = server.serve(requests, label=label, arrival_name=arrival_name)
    return cluster, report


def _cluster_static(seed: int, quick: bool):
    """Static-fleet cluster serving: 4 replicas over 2 NIC-linked nodes.

    Exercises the cross-node dispatch path -- payload ship over the NIC,
    remote prepare/dispatch in the shared cluster time frame -- under the
    same Poisson load shape as the single-machine scaling scenarios, so a
    wall-clock regression here isolates the cluster layer's own overhead.
    """
    cluster, report = _cluster_serving_run(seed, quick, "numeric", autoscale=False)
    extras = {
        "p99_ms": round(report.total_latency().p99_ms, 3) if report.completed else 0.0,
        "nic_mb": round(cluster.nic_bytes() / 1e6, 3),
    }
    return (cluster, extras)


def _cluster_autoscale_flash(seed: int, quick: bool):
    """Autoscaled flash-crowd serving, interleaved numeric-vs-shape A/B.

    The elastic fleet rides a flash crowd -- scale-ups pay modeled cold
    starts (weight transfer over the NIC) on the simulated timeline.  Both
    backends run the identical workload and must agree on event counts,
    cluster clocks, p99 and the autoscaler's decisions; the ``wall_*``
    extras carry the backend A/B result for this heaviest serving path.
    """
    start = time.perf_counter()
    numeric_cluster, numeric_report = _cluster_serving_run(seed, quick, "numeric", True)
    numeric_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    shape_cluster, shape_report = _cluster_serving_run(seed, quick, "shape", True)
    shape_ms = (time.perf_counter() - start) * 1e3
    numeric_p99 = numeric_report.total_latency().p99_ms if numeric_report.completed else 0.0
    shape_p99 = shape_report.total_latency().p99_ms if shape_report.completed else 0.0
    numeric_scale = numeric_report.autoscale or {}
    shape_scale = shape_report.autoscale or {}
    if (
        numeric_cluster.event_count != shape_cluster.event_count
        or numeric_cluster.time_ms != shape_cluster.time_ms
        or numeric_p99 != shape_p99
        or numeric_scale.get("scale_ups") != shape_scale.get("scale_ups")
        or numeric_scale.get("scale_downs") != shape_scale.get("scale_downs")
    ):
        raise RuntimeError(
            "shape backend diverged from numeric on the autoscaled cluster "
            f"workload: events {numeric_cluster.event_count} vs "
            f"{shape_cluster.event_count}, sim {numeric_cluster.time_ms} vs "
            f"{shape_cluster.time_ms} ms, p99 {numeric_p99} vs {shape_p99} ms, "
            f"autoscale {numeric_scale} vs {shape_scale}"
        )
    extras = {
        "p99_ms": round(shape_p99, 3),
        "nic_mb": round(shape_cluster.nic_bytes() / 1e6, 3),
        "scale_ups": float(shape_scale.get("scale_ups", 0)),
        "scale_downs": float(shape_scale.get("scale_downs", 0)),
        "cold_start_ms": round(shape_scale.get("cold_start_ms", 0.0), 3),
        "wall_numeric_ms": round(numeric_ms, 3),
        "wall_shape_ms": round(shape_ms, 3),
        "wall_speedup": round(numeric_ms / shape_ms, 3) if shape_ms > 0 else 0.0,
    }
    return (shape_cluster, extras)


def _cache_admin(seed: int, quick: bool):
    """Batched vs per-key cache admin on tiny memory rows (micro A/B).

    Fills two identical presence-style stores -- 16-byte rows, where the
    per-key Python overhead dwarfs the payload -- then runs a probe-heavy
    mix (the ``lookup_memory`` pattern: every batch probes, only misses
    insert), once through the per-key ``probe``/``put`` calls and once
    through ``probe_many``/``put_many``.  The two paths are
    charge-identical (same stats, same deferred ledger, checked below), so
    the only difference the ``wall_*`` extras can show is the admin
    overhead the batched API removes.  Probe and insert phases are timed
    separately: inserts pay a per-entry simulated allocation either way, so
    the batched win concentrates in the probe phase.
    """
    machine = Machine.cpu_gpu()
    n = 2048 if quick else 8192
    rounds = 2 if quick else 4
    keys = list(range(n))
    times = [float(index % 97) for index in range(n)]
    row_nbytes = 16

    def build() -> DeviceResidentCache:
        return DeviceResidentCache(
            machine,
            machine.gpus[0],
            "memory",
            make_eviction_policy("lru"),
            64 << 20,
            1e9,
        )

    probe_rounds = rounds * 4
    loop_put_ms = loop_probe_ms = batch_put_ms = batch_probe_ms = 0.0
    with machine.activate():
        loop_store = build()
        batch_store = build()
        # Interleave the two paths round by round so allocator/event-log
        # growth over the run penalises both equally.
        for _ in range(rounds):
            start = time.perf_counter()
            for key, event_ms in zip(keys, times):
                loop_store.put(key, True, event_ms, row_nbytes)
            loop_store.flush_charges("update")
            loop_put_ms += (time.perf_counter() - start) * 1e3
            start = time.perf_counter()
            batch_store.put_many(keys, True, times, row_nbytes)
            batch_store.flush_charges("update")
            batch_put_ms += (time.perf_counter() - start) * 1e3
        for _ in range(probe_rounds):
            start = time.perf_counter()
            for key, event_ms in zip(keys, times):
                loop_store.probe(key, event_ms)
            loop_store.flush_charges("lookup")
            loop_probe_ms += (time.perf_counter() - start) * 1e3
            start = time.perf_counter()
            batch_store.probe_many(keys, times)
            batch_store.flush_charges("lookup")
            batch_probe_ms += (time.perf_counter() - start) * 1e3
    if loop_store.stats.as_dict() != batch_store.stats.as_dict():
        raise RuntimeError(
            "batched cache admin diverged from the per-key path: "
            f"{loop_store.stats.as_dict()} vs {batch_store.stats.as_dict()}"
        )
    extras = {
        "keys": float(n),
        "row_nbytes": float(row_nbytes),
        "wall_put_perkey_ms": round(loop_put_ms, 3),
        "wall_put_batched_ms": round(batch_put_ms, 3),
        "wall_probe_perkey_ms": round(loop_probe_ms, 3),
        "wall_probe_batched_ms": round(batch_probe_ms, 3),
        "wall_probe_speedup": (
            round(loop_probe_ms / batch_probe_ms, 3) if batch_probe_ms > 0 else 0.0
        ),
    }
    return (machine, extras)


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "training_iteration",
            "offline TGAT mini-batch iteration loop (blocking)",
            _training_iteration,
        ),
        Scenario(
            "serving_blocking",
            "online serving, blocking execution, Poisson arrivals",
            lambda seed, quick: _serving(seed, quick, overlap=False),
        ),
        Scenario(
            "serving_overlap",
            "online serving, sampling/compute overlap, Poisson arrivals",
            lambda seed, quick: _serving(seed, quick, overlap=True),
        ),
        Scenario(
            "serving_blocking_cached",
            "online serving, blocking execution, warm staleness-bounded cache",
            lambda seed, quick: _serving(seed, quick, overlap=False, cached=True),
        ),
        Scenario(
            "serving_overlap_cached",
            "online serving, overlap + warm staleness-bounded cache",
            lambda seed, quick: _serving(seed, quick, overlap=True, cached=True),
        ),
        Scenario(
            "serving_traced",
            "online overlapped serving with span tracer + metrics attached",
            _serving_traced,
        ),
        Scenario(
            "serving_fidelity_overload",
            "adaptive-fidelity serving under ~2x overload (slo policy)",
            _serving_fidelity,
        ),
        Scenario(
            "serving_backfill_warmed",
            "serving against a proactively backfilled embedding cache",
            _serving_backfill,
        ),
        Scenario(
            "scaling_1gpu",
            "replicated serving on 1xA100",
            lambda seed, quick: _scaling(seed, quick, "1xA100", 1),
        ),
        Scenario(
            "scaling_2gpu",
            "replicated serving on 2xA100-pcie",
            lambda seed, quick: _scaling(seed, quick, "2xA100-pcie", 2),
        ),
        Scenario(
            "scaling_4gpu",
            "replicated serving on 4xA100-pcie",
            lambda seed, quick: _scaling(seed, quick, "4xA100-pcie", 4),
        ),
        Scenario(
            "serving_overlap_shape",
            "online overlapped serving on the shape (value-free) backend",
            lambda seed, quick: _serving(seed, quick, overlap=True, backend="shape"),
        ),
        Scenario(
            "serving_shape_speedup",
            "interleaved numeric-vs-shape A/B, production-sized batches",
            _shape_speedup,
        ),
        Scenario(
            "cluster_static_fleet",
            "static 4-replica serving across 2 NIC-linked nodes",
            _cluster_static,
        ),
        Scenario(
            "cluster_autoscale_flash",
            "autoscaled flash-crowd cluster serving, numeric-vs-shape A/B",
            _cluster_autoscale_flash,
        ),
        Scenario(
            "scheduler_throughput",
            "raw scheduling engine: batched kernels + transfers, events on",
            lambda seed, quick: _scheduler_throughput(seed, quick, True),
        ),
        Scenario(
            "scheduler_throughput_noprofile",
            "raw scheduling engine with event recording disabled",
            lambda seed, quick: _scheduler_throughput(seed, quick, False),
        ),
        Scenario(
            "scheduler_throughput_shape",
            "raw scheduling engine under the shape backend (identical timeline)",
            lambda seed, quick: _scheduler_throughput(seed, quick, True, backend="shape"),
        ),
        Scenario(
            "cache_admin_tiny_rows",
            "batched vs per-key cache admin on 16-byte presence rows",
            _cache_admin,
        ),
    )
}


def available_scenarios() -> List[str]:
    return list(SCENARIOS)
