"""BENCH_<n>.json reports: schema, validation, baseline comparison.

The on-disk schema is a flat mapping ``scenario -> metrics``::

    {"serving_blocking": {"wall_ms": ..., "sim_ms": ..., "events_per_sec":
     ..., "reps": ..., "seed": ..., "git_sha": "..."}, ...}

``wall_ms`` is the median over the run's repetitions.  ``wall_iqr_ms`` and
``quick`` are optional extras; validators tolerate unknown keys so the
schema can grow additively.  Reports are numbered from 4 upwards (PRs 0-3
predate the harness), so the repo root accumulates ``BENCH_4.json``,
``BENCH_5.json``, ... as the perf trajectory.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
from dataclasses import dataclass
from typing import Dict, List, Optional

from .harness import BenchResult

#: Keys every scenario entry must carry, with their accepted types.
REQUIRED_KEYS = {
    "wall_ms": (int, float),
    "sim_ms": (int, float),
    "events_per_sec": (int, float),
    "reps": (int,),
    "seed": (int,),
    "git_sha": (str,),
}

#: First index in the BENCH_<n>.json trajectory (PRs 0-3 had no harness).
FIRST_BENCH_INDEX = 4

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def git_sha(cwd: Optional[str] = None) -> str:
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = result.stdout.strip()
    return sha if result.returncode == 0 and sha else "unknown"


def to_payload(result: BenchResult, sha: Optional[str] = None) -> Dict[str, dict]:
    """Serialize a bench run into the report schema."""
    sha = sha if sha is not None else git_sha()
    payload: Dict[str, dict] = {}
    for scenario in result.scenarios:
        entry = {
            "wall_ms": round(scenario.wall_ms, 3),
            "wall_iqr_ms": round(scenario.wall_iqr_ms, 3),
            "sim_ms": round(scenario.sim_ms, 6),
            "events_per_sec": round(scenario.events_per_sec, 1),
            "reps": scenario.reps,
            "seed": scenario.seed,
            "git_sha": sha,
            "quick": scenario.quick,
        }
        if scenario.extras:
            entry["extras"] = dict(scenario.extras)
        payload[scenario.name] = entry
    return payload


def validate_payload(payload: object) -> None:
    """Raise :class:`ValueError` unless ``payload`` matches the schema."""
    if not isinstance(payload, dict) or not payload:
        raise ValueError("bench report must be a non-empty object")
    for name, entry in payload.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"scenario name {name!r} must be a non-empty string")
        if not isinstance(entry, dict):
            raise ValueError(f"scenario {name!r} entry must be an object")
        for key, types in REQUIRED_KEYS.items():
            if key not in entry:
                raise ValueError(f"scenario {name!r} is missing required key {key!r}")
            value = entry[key]
            if isinstance(value, bool) or not isinstance(value, types):
                raise ValueError(
                    f"scenario {name!r} key {key!r} has type "
                    f"{type(value).__name__}, expected one of "
                    f"{[t.__name__ for t in types]}"
                )
        for key in ("wall_ms", "sim_ms", "events_per_sec"):
            if entry[key] < 0:
                raise ValueError(f"scenario {name!r} key {key!r} must be non-negative")
        if entry["reps"] < 1:
            raise ValueError(f"scenario {name!r} reps must be positive")


def write_report(payload: Dict[str, dict], path: str) -> str:
    """Validate and write one report; returns the path."""
    validate_payload(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, dict]:
    """Load and validate a report file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    validate_payload(payload)
    return payload


def next_bench_path(directory: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` path in ``directory``.

    Numbering starts at :data:`FIRST_BENCH_INDEX` and continues after the
    highest existing index (``BENCH_baseline.json`` does not count).
    """
    highest = FIRST_BENCH_INDEX - 1
    for entry in os.listdir(directory):
        match = _BENCH_NAME.match(entry)
        if match:
            highest = max(highest, int(match.group(1)))
    return os.path.join(directory, f"BENCH_{highest + 1}.json")


def comparable_scenarios(current: Dict[str, dict], baseline: Dict[str, dict]) -> List[str]:
    """Scenario names a baseline comparison would actually gate on.

    A scenario is comparable when both reports carry it, the baseline's
    wall time is positive, and the two entries ran in the same mode
    (``quick`` flags agree).  The CLI refuses to declare the perf gate
    passed when this list is empty -- e.g. when a full-mode baseline is
    compared against a ``--quick`` run -- because zero comparisons would
    otherwise be indistinguishable from a clean pass.
    """
    names = []
    for name, entry in sorted(current.items()):
        base = baseline.get(name)
        if base is None or base["wall_ms"] <= 0:
            continue
        if entry.get("quick") != base.get("quick"):
            continue
        names.append(name)
    return names


@dataclass(frozen=True)
class Regression:
    """One scenario whose wall-clock exceeded the allowed regression."""

    scenario: str
    baseline_wall_ms: float
    current_wall_ms: float
    ratio: float


def compare_to_baseline(
    current: Dict[str, dict],
    baseline: Dict[str, dict],
    max_regression: float = 0.25,
) -> List[Regression]:
    """Scenarios slower than ``baseline`` by more than ``max_regression``.

    Only scenarios present in both reports are compared (so the suite can
    grow without immediately failing the gate); a scenario the baseline
    knows but the current run skipped is *not* a regression -- the CI job
    runs the full suite, so a silently vanishing scenario would surface as
    a missing-baseline-entry diff when the baseline is next refreshed.
    Entries whose ``quick`` flags disagree are skipped too: quick and full
    workloads are different sizes, so comparing across modes would flag
    phantom regressions.
    """
    if max_regression < 0:
        raise ValueError("max_regression must be non-negative")
    regressions: List[Regression] = []
    for name in comparable_scenarios(current, baseline):
        entry = current[name]
        base = baseline[name]
        ratio = entry["wall_ms"] / base["wall_ms"]
        if ratio > 1.0 + max_regression:
            regressions.append(
                Regression(
                    scenario=name,
                    baseline_wall_ms=base["wall_ms"],
                    current_wall_ms=entry["wall_ms"],
                    ratio=ratio,
                )
            )
    return regressions


def format_table(payload: Dict[str, dict], baseline: Optional[Dict[str, dict]] = None) -> str:
    """Render a report (optionally vs. a baseline) as a markdown table.

    Scenarios carrying ``extras`` (simulated serving metrics such as p99
    latency or cache hit rate) get an extra column summarising them.
    """
    with_extras = any(entry.get("extras") for entry in payload.values())
    header = "| scenario | wall ms (median) | sim ms | events/s | reps |"
    divider = "|---|---|---|---|---|"
    if with_extras:
        header += " extras |"
        divider += "---|"
    if baseline is not None:
        header += " vs baseline |"
        divider += "---|"
    lines = [header, divider]
    for name, entry in sorted(payload.items()):
        row = (
            f"| {name} | {entry['wall_ms']:.1f} | {entry['sim_ms']:.3f} "
            f"| {entry['events_per_sec']:.0f} | {entry['reps']} |"
        )
        if with_extras:
            extras = entry.get("extras") or {}
            summary = " ".join(f"{key}={value:g}" for key, value in sorted(extras.items()))
            row += f" {summary or '-'} |"
        if baseline is not None:
            base = baseline.get(name)
            if base is None or base["wall_ms"] <= 0:
                row += " (new) |"
            elif entry.get("quick") != base.get("quick"):
                # Mode-mismatched entries are excluded from the gate, so
                # printing a ratio across workload sizes would be misleading.
                row += " (incomparable: quick/full) |"
            else:
                ratio = entry["wall_ms"] / base["wall_ms"]
                row += f" {(ratio - 1.0) * 100.0:+.1f}% |"
        lines.append(row)
    return "\n".join(lines)
