"""Benchmark subsystem: the repo's performance trajectory, made machine-readable.

``repro-dgnn bench`` runs a fixed scenario suite against the simulator and
records wall-clock speed (how fast the simulator itself executes), simulated
time (what the cost model computed -- a pure function of the seed) and event
throughput.  The suite spans the three workload families the reproduction
cares about:

* ``training_iteration`` -- the offline iteration loop the paper profiles:
  consecutive TGAT mini-batches through ``inference_iteration`` (this
  inference-focused reproduction has no backward pass; the "iteration" is
  the same forward unit every figure experiment measures).
* ``serving_blocking`` / ``serving_overlap`` -- the online serving loop
  under Poisson load, blocking vs. sampling/compute-overlap execution.
* ``scaling_1gpu`` / ``scaling_2gpu`` / ``scaling_4gpu`` -- replicated
  scale-out serving on the 1/2/4xA100 PCIe topologies.
* ``scheduler_throughput`` / ``scheduler_throughput_noprofile`` -- the raw
  scheduling engine driven directly (batched kernel charging, transfers,
  synchronisations; no numerics or sampling), with and without event
  recording (``Machine(record_events=False)``), isolating the simulator's
  own speed from model numerics.

Each scenario is run ``reps`` times from the same seed (the simulated
results are identical across reps; only wall-clock varies) and reported as
the median wall time with its interquartile range.

Report schema (``BENCH_<n>.json``)::

    {
      "<scenario>": {
        "wall_ms":        <median wall-clock per run, ms>,
        "sim_ms":         <simulated machine time per run, ms>,
        "events_per_sec": <simulated actions per wall-clock second, median>,
        "reps":           <repetitions measured>,
        "seed":           <workload seed>,
        "git_sha":        "<short commit hash, or 'unknown'>"
      },
      ...
    }

Extra keys (``wall_iqr_ms``, ``quick``) may appear alongside the required
six; validators must tolerate them.  Files are numbered ``BENCH_4.json``,
``BENCH_5.json``, ... (PRs 0-3 predate the harness), forming the perf
trajectory next to the checked-in ``BENCH_baseline.json`` that the CI perf
gate compares against: a scenario whose median wall time regresses more
than the configured fraction (default 25%) fails the build.
"""

from .harness import BenchResult, ScenarioResult, run_bench
from .report import (
    REQUIRED_KEYS,
    comparable_scenarios,
    compare_to_baseline,
    format_table,
    load_report,
    next_bench_path,
    to_payload,
    validate_payload,
    write_report,
)
from .scenarios import SCENARIOS, available_scenarios

__all__ = [
    "BenchResult",
    "REQUIRED_KEYS",
    "SCENARIOS",
    "ScenarioResult",
    "available_scenarios",
    "comparable_scenarios",
    "compare_to_baseline",
    "format_table",
    "load_report",
    "next_bench_path",
    "run_bench",
    "to_payload",
    "validate_payload",
    "write_report",
]
