"""Tests for the benchmark subsystem: schema, repeatability, CI gate, CLI."""

import json
import os

import pytest

from repro.bench import (
    REQUIRED_KEYS,
    available_scenarios,
    comparable_scenarios,
    compare_to_baseline,
    format_table,
    load_report,
    next_bench_path,
    run_bench,
    to_payload,
    validate_payload,
    write_report,
)
from repro.bench.harness import run_scenario
from repro.bench.scenarios import SCENARIOS
from repro.cli import main


@pytest.fixture(scope="module")
def quick_result():
    """One quick bench run over two representative scenarios (shared)."""
    return run_bench(
        scenarios=["training_iteration", "serving_blocking"],
        seed=0,
        reps=2,
        quick=True,
    )


def test_scenario_registry_covers_required_families():
    names = available_scenarios()
    assert "training_iteration" in names
    assert {"serving_blocking", "serving_overlap"} <= set(names)
    assert {"serving_blocking_cached", "serving_overlap_cached"} <= set(names)
    assert {"scaling_1gpu", "scaling_2gpu", "scaling_4gpu"} <= set(names)
    assert {"serving_overlap_shape", "serving_shape_speedup"} <= set(names)
    assert {"scheduler_throughput_shape", "cache_admin_tiny_rows"} <= set(names)


def test_wall_prefixed_extras_are_exempt_from_determinism_and_medianed():
    """``wall_*`` extras vary per rep (they are measured wall-clock); the
    harness must median them instead of failing the determinism check."""
    from repro.bench.scenarios import Scenario
    from repro.hw.machine import Machine

    samples = iter([10.0, 30.0, 20.0])

    def fn(seed, quick):
        machine = Machine.cpu_only()
        with machine.activate():
            machine.host_work("noop", 1.0)
        return (machine, {"stable": 7.0, "wall_ab_ms": next(samples)})

    result = run_scenario(Scenario("fake", "wall extras", fn), seed=0, reps=3, quick=True)
    assert result.extras["stable"] == 7.0
    assert result.extras["wall_ab_ms"] == 20.0


def test_payload_is_schema_valid(quick_result):
    payload = to_payload(quick_result, sha="deadbeef")
    validate_payload(payload)
    for entry in payload.values():
        for key, types in REQUIRED_KEYS.items():
            assert key in entry
            assert isinstance(entry[key], types)
        assert entry["git_sha"] == "deadbeef"
        assert entry["reps"] == 2
        assert entry["seed"] == 0


def test_written_report_round_trips(quick_result, tmp_path):
    payload = to_payload(quick_result, sha="deadbeef")
    path = write_report(payload, str(tmp_path / "BENCH_test.json"))
    assert load_report(path) == payload
    with open(path, "r", encoding="utf-8") as handle:
        assert json.load(handle) == payload


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda p: p.clear(), "non-empty"),
        (lambda p: p["training_iteration"].pop("wall_ms"), "missing required"),
        (lambda p: p["training_iteration"].update(git_sha=1), "type"),
        (lambda p: p["training_iteration"].update(reps=0), "positive"),
        (lambda p: p["training_iteration"].update(wall_ms=-1.0), "non-negative"),
    ],
)
def test_validation_rejects_malformed_payloads(quick_result, mutate, message):
    payload = to_payload(quick_result, sha="deadbeef")
    mutate(payload)
    with pytest.raises(ValueError, match=message):
        validate_payload(payload)


def test_quick_runs_are_seed_repeatable():
    """Same seed => identical simulated time and event count (wall may vary)."""
    first = run_scenario(SCENARIOS["serving_blocking"], seed=3, reps=1, quick=True)
    second = run_scenario(SCENARIOS["serving_blocking"], seed=3, reps=1, quick=True)
    assert first.sim_ms == second.sim_ms
    assert first.events == second.events
    different = run_scenario(SCENARIOS["serving_blocking"], seed=4, reps=1, quick=True)
    assert different.sim_ms != first.sim_ms


def test_repetitions_reuse_the_same_simulated_workload(quick_result):
    for scenario in quick_result.scenarios:
        assert scenario.reps == 2
        assert scenario.sim_ms > 0
        assert scenario.events > 0
        assert scenario.events_per_sec > 0


def test_compare_to_baseline_flags_only_real_regressions(quick_result):
    payload = to_payload(quick_result, sha="deadbeef")
    # Identical run: no regressions at any threshold.
    assert compare_to_baseline(payload, payload, max_regression=0.0) == []
    # Inflate one scenario by 30%: caught at 25%, tolerated at 50%.
    slower = json.loads(json.dumps(payload))
    slower["training_iteration"]["wall_ms"] *= 1.3
    regressions = compare_to_baseline(slower, payload, max_regression=0.25)
    assert [r.scenario for r in regressions] == ["training_iteration"]
    assert regressions[0].ratio == pytest.approx(1.3)
    assert compare_to_baseline(slower, payload, max_regression=0.5) == []
    # Scenarios unknown to the baseline are not regressions.
    extra = json.loads(json.dumps(payload))
    extra["brand_new_scenario"] = dict(payload["training_iteration"])
    assert compare_to_baseline(extra, payload, max_regression=0.0) == []


def test_mode_mismatched_baseline_fails_instead_of_passing_vacuously(
    quick_result, tmp_path, capsys
):
    """A full-mode baseline vs a --quick run must not report a clean gate."""
    payload = to_payload(quick_result, sha="deadbeef")
    full_mode = json.loads(json.dumps(payload))
    for entry in full_mode.values():
        entry["quick"] = False
    assert comparable_scenarios(payload, full_mode) == []
    assert compare_to_baseline(payload, full_mode, max_regression=0.0) == []
    baseline_path = tmp_path / "BENCH_baseline.json"
    write_report(full_mode, str(baseline_path))
    code = main([
        "bench", "--quick", "--reps", "1",
        "--scenario", "serving_blocking",
        "--no-write",
        "--baseline", str(baseline_path),
    ])
    assert code == 1
    assert "no scenario is comparable" in capsys.readouterr().err


def test_format_table_lists_every_scenario(quick_result):
    payload = to_payload(quick_result, sha="deadbeef")
    table = format_table(payload, baseline=payload)
    for name in payload:
        assert name in table
    assert "+0.0%" in table


def test_next_bench_path_numbers_from_four(tmp_path):
    assert os.path.basename(next_bench_path(str(tmp_path))) == "BENCH_4.json"
    (tmp_path / "BENCH_4.json").write_text("{}")
    (tmp_path / "BENCH_7.json").write_text("{}")
    (tmp_path / "BENCH_baseline.json").write_text("{}")
    assert os.path.basename(next_bench_path(str(tmp_path))) == "BENCH_8.json"


def test_cli_bench_writes_schema_valid_report(tmp_path, capsys):
    out = tmp_path / "BENCH_cli.json"
    code = main([
        "bench", "--quick", "--reps", "1",
        "--scenario", "serving_blocking",
        "--output", str(out),
    ])
    assert code == 0
    payload = load_report(str(out))
    assert set(payload) == {"serving_blocking"}
    assert "serving_blocking" in capsys.readouterr().out


def test_cli_bench_gates_on_baseline(tmp_path, capsys):
    baseline_path = tmp_path / "BENCH_baseline.json"
    out = tmp_path / "BENCH_now.json"
    code = main([
        "bench", "--quick", "--reps", "1",
        "--scenario", "serving_blocking",
        "--output", str(baseline_path),
    ])
    assert code == 0
    # An absurdly fast fake baseline forces the gate to trip.
    fast = load_report(str(baseline_path))
    fast["serving_blocking"]["wall_ms"] = 1e-6
    write_report(fast, str(baseline_path))
    code = main([
        "bench", "--quick", "--reps", "1",
        "--scenario", "serving_blocking",
        "--output", str(out),
        "--baseline", str(baseline_path),
    ])
    assert code == 1
    assert "PERF REGRESSION" in capsys.readouterr().err
    # A generous baseline passes and reports the gate.
    slow = load_report(str(out))
    slow["serving_blocking"]["wall_ms"] = 1e9
    write_report(slow, str(baseline_path))
    code = main([
        "bench", "--quick", "--reps", "1",
        "--scenario", "serving_blocking",
        "--output", str(out),
        "--baseline", str(baseline_path),
    ])
    assert code == 0
    assert "perf gate passed" in capsys.readouterr().out
