"""Observability layer: tracer identity, trace export, attribution, merges."""

import json

import pytest

from repro.cache import merge_cache_stats
from repro.cli import main
from repro.datasets import load
from repro.hw import Cluster, Machine
from repro.models.tgat import TGAT, TGATConfig
from repro.obs import (
    EPS_MS,
    MetricsRegistry,
    Tracer,
    attribute_request,
    build_trace,
    merge_metrics,
    pick_request,
    record_completion,
    record_dispatch,
    top_spans,
    validate_trace,
)
from repro.obs.critical_path import BREAKDOWN_SEGMENTS
from repro.serve import (
    ClusterServer,
    InferenceServer,
    PoissonProcess,
    build_cluster_replicas,
    generate_requests,
    make_policy,
    make_router,
    merge_fidelity,
)


@pytest.fixture(scope="module")
def tiny_wikipedia():
    return load("wikipedia", scale="tiny")


def _events_signature(machine):
    return [
        (e.kind, e.name, e.resource, e.start_ms, e.end_ms, e.bytes, e.stream)
        for e in machine.events
    ]


def _serve_single(dataset, tracer=None, metrics=None, overlap=True):
    machine = Machine.cpu_gpu()
    config = TGATConfig(num_neighbors=5, batch_size=8)
    with machine.activate():
        model = TGAT(machine, dataset, config)
    if tracer is not None:
        tracer.attach(machine)
    requests = generate_requests(
        dataset.stream, PoissonProcess(600.0, seed=3),
        duration_ms=150.0, events_per_request=1, slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    server = InferenceServer(
        model, policy, overlap=overlap, tracer=tracer, metrics=metrics
    )
    report = server.serve(requests, arrival_name="poisson")
    return machine, report


def _serve_cluster(dataset, tracer=None, metrics=None, cluster_name="2n-1xA100-eth"):
    cluster = Cluster(cluster_name)
    config = TGATConfig(num_neighbors=5, batch_size=8)
    replicas, nodes = build_cluster_replicas(
        cluster, lambda machine: TGAT(machine, dataset, config)
    )
    requests = generate_requests(
        dataset.stream, PoissonProcess(500.0, seed=0),
        duration_ms=250.0, events_per_request=2, slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    server = ClusterServer(
        cluster, replicas, nodes, policy,
        make_router("round-robin", len(replicas)),
        tracer=tracer, metrics=metrics,
    )
    report = server.serve(requests, arrival_name="poisson")
    return cluster, report


class TestTracerIdentity:
    """Attaching the tracer must never perturb the simulation."""

    def test_single_machine_serving_is_event_identical(self, tiny_wikipedia):
        bare_machine, bare = _serve_single(tiny_wikipedia)
        traced_machine, traced = _serve_single(
            tiny_wikipedia, tracer=Tracer(), metrics=MetricsRegistry()
        )
        assert _events_signature(bare_machine) == _events_signature(traced_machine)
        assert bare_machine.host_time_ms == traced_machine.host_time_ms
        assert [r.completed_ms for r in bare.requests] == [
            r.completed_ms for r in traced.requests
        ]
        assert bare.total_latency().p99_ms == traced.total_latency().p99_ms

    def test_cluster_serving_is_event_identical(self, tiny_wikipedia):
        bare_cluster, bare = _serve_cluster(tiny_wikipedia)
        traced_cluster, traced = _serve_cluster(
            tiny_wikipedia, tracer=Tracer(), metrics=MetricsRegistry()
        )
        for bare_node, traced_node in zip(bare_cluster.nodes, traced_cluster.nodes):
            assert _events_signature(bare_node) == _events_signature(traced_node)
        assert bare_cluster.time_ms == traced_cluster.time_ms
        assert [r.completed_ms for r in bare.requests] == [
            r.completed_ms for r in traced.requests
        ]

    def test_attach_requires_event_recording(self):
        machine = Machine.cpu_gpu(record_events=False)
        with pytest.raises(ValueError, match="record_events"):
            Tracer().attach(machine)


class TestSpans:
    def test_spans_reconstruct_the_latency_split(self, tiny_wikipedia):
        tracer = Tracer()
        _, report = _serve_single(tiny_wikipedia, tracer=tracer)
        assert report.completed > 0
        for request in report.requests:
            spans = tracer.spans_for_request(request.request_id)
            queue = [s for s in spans if s.category == "queue"]
            service = [s for s in spans if s.category == "service"]
            assert len(queue) == 1 and len(service) == 1
            assert queue[0].duration_ms == pytest.approx(request.queue_ms, abs=EPS_MS)
            assert service[0].duration_ms == pytest.approx(
                request.service_ms, abs=EPS_MS
            )

    def test_every_span_closes_and_children_nest(self, tiny_wikipedia):
        tracer = Tracer()
        _, _ = _serve_single(tiny_wikipedia, tracer=tracer)
        assert tracer.spans
        for span in tracer.spans:
            assert span.end_ms is not None
            assert span.end_ms >= span.start_ms - EPS_MS
            if span.parent_id is not None:
                parent = tracer.get_span(span.parent_id)
                assert parent.start_ms - EPS_MS <= span.start_ms
                assert span.end_ms <= parent.end_ms + EPS_MS

    def test_cluster_trace_emits_nic_spans_with_request_context(self, tiny_wikipedia):
        tracer = Tracer()
        _, report = _serve_cluster(tiny_wikipedia, tracer=tracer)
        nic = [s for s in tracer.spans if s.category == "nic"]
        assert nic, "cross-node dispatch should record NIC hop spans"
        assert any(s.trace_ids for s in nic)
        for span in nic:
            assert span.name.startswith("nic:")
            assert span.attrs["bytes"] > 0


class TestExport:
    def test_exported_trace_validates_and_flows_cross_nodes(self, tiny_wikipedia):
        tracer = Tracer()
        metrics = MetricsRegistry()
        _, report = _serve_cluster(tiny_wikipedia, tracer=tracer, metrics=metrics)
        payload = build_trace(tracer, report=report, label="test-cluster")
        validate_trace(payload)
        assert payload["repro"]["label"] == "test-cluster"
        assert len(payload["repro"]["nodes"]) == 2
        flows = [e for e in payload["traceEvents"] if e.get("ph") in ("s", "f")]
        assert flows
        assert {e["pid"] for e in flows} == {1, 2}, "flows must cross node tracks"
        # The payload must survive a JSON round trip unchanged.
        assert json.loads(json.dumps(payload)) == payload

    def test_validate_trace_rejects_unbalanced_spans(self, tiny_wikipedia):
        tracer = Tracer()
        _, report = _serve_single(tiny_wikipedia, tracer=tracer)
        payload = build_trace(tracer, report=report)
        begins = [e for e in payload["traceEvents"] if e.get("ph") == "b"]
        assert begins
        payload["traceEvents"].remove(begins[0])
        with pytest.raises(ValueError):
            validate_trace(payload)


class TestAttribution:
    @pytest.fixture(scope="class")
    def cluster_payload(self, tiny_wikipedia):
        tracer = Tracer()
        _, report = _serve_cluster(tiny_wikipedia, tracer=tracer)
        return build_trace(tracer, report=report, label="attr")

    @pytest.mark.parametrize("selector", ["p50", "p95", "p99", "max"])
    def test_segments_sum_to_total(self, cluster_payload, selector):
        request = pick_request(cluster_payload, selector)
        breakdown = attribute_request(cluster_payload, request)
        covered = sum(breakdown[segment] for segment in BREAKDOWN_SEGMENTS)
        assert covered == pytest.approx(breakdown["total"], abs=1e-6)
        assert breakdown["queue"] == pytest.approx(request["queue_ms"], abs=1e-6)
        assert all(value >= -1e-9 for value in breakdown.values())

    def test_pick_request_by_id_and_errors(self, cluster_payload):
        first = cluster_payload["repro"]["requests"][0]
        assert pick_request(cluster_payload, str(first["id"])) == first
        with pytest.raises(ValueError):
            pick_request(cluster_payload, "999999")
        with pytest.raises(ValueError):
            pick_request(cluster_payload, "fastest")

    def test_top_spans_are_sorted_and_closed(self, cluster_payload):
        spans = top_spans(cluster_payload, k=5)
        assert len(spans) == 5
        durations = [s["duration_ms"] for s in spans]
        assert durations == sorted(durations, reverse=True)


class TestMetrics:
    def test_registry_records_dispatch_and_completion(self, tiny_wikipedia):
        metrics = MetricsRegistry()
        _, report = _serve_single(tiny_wikipedia, metrics=metrics)
        snap = metrics.snapshot(at_ms=123.0)
        assert snap["at_ms"] == 123.0
        m = snap["metrics"]
        assert m["serve.requests"]["value"] == report.completed
        assert m["serve.batches"]["value"] > 0
        assert m["serve.latency_total_ms"]["count"] == report.completed
        assert sum(m["serve.batch_size"]["buckets"]) == m["serve.batches"]["value"]
        assert m["serve.queue_depth"]["peak"] >= m["serve.queue_depth"]["value"]

    def test_report_carries_the_snapshot(self, tiny_wikipedia):
        metrics = MetricsRegistry()
        _, report = _serve_single(tiny_wikipedia, metrics=metrics)
        assert report.metrics is not None
        assert "serve.requests" in report.metrics["metrics"]
        assert "metrics" in report.summary()


class TestMergeHelpers:
    def _snapshot(self, requests=2, latency=5.0):
        registry = MetricsRegistry()
        record_dispatch(registry, batch_size=requests, queue_depth=requests)

        class _Req:
            slo_violated = False
            total_ms = latency
            queue_ms = latency / 2
            service_ms = latency / 2

        for _ in range(requests):
            record_completion(registry, _Req())
        return registry.snapshot(at_ms=10.0)

    def test_merge_metrics_empty_and_none_inputs(self):
        assert merge_metrics([]) is None
        assert merge_metrics([None, None]) is None

    def test_merge_metrics_single_snapshot_passes_through(self):
        snap = self._snapshot(requests=3)
        merged = merge_metrics([snap, None])
        assert merged["registries"] == 1
        assert merged["metrics"]["serve.requests"]["value"] == 3

    def test_merge_metrics_sums_and_peaks(self):
        merged = merge_metrics([self._snapshot(2, 4.0), self._snapshot(4, 40.0)])
        m = merged["metrics"]
        assert merged["registries"] == 2
        assert m["serve.requests"]["value"] == 6
        assert m["serve.queue_depth"]["peak"] == 4.0
        assert m["serve.queue_depth"]["value"] == 6.0  # fleet-wide sum
        hist = m["serve.latency_total_ms"]
        assert hist["count"] == 6
        assert hist["min"] == 4.0 and hist["max"] == 40.0
        assert sum(hist["buckets"]) == 6

    def test_merge_metrics_rejects_mismatched_histogram_bounds(self):
        a = self._snapshot()
        b = self._snapshot()
        b["metrics"]["serve.latency_total_ms"]["bounds"] = [1.0, 2.0]
        with pytest.raises(ValueError, match="bounds differ"):
            merge_metrics([a, b])

    def test_merge_metrics_rejects_type_change(self):
        a = self._snapshot()
        b = self._snapshot()
        b["metrics"]["serve.requests"] = {"type": "gauge", "value": 1.0, "peak": 1.0}
        with pytest.raises(ValueError, match="changes type"):
            merge_metrics([a, b])

    def test_merge_cache_stats_heterogeneous_fleet(self):
        a = {
            "policy": "lru", "capacity_mb": 4.0, "staleness_ms": 1.0,
            "kinds": ["embedding"], "lookups": 10, "hits": 5, "misses": 5,
            "bytes_peak": 100,
        }
        b = {
            "policy": "lru", "capacity_mb": 8.0, "staleness_ms": 1.0,
            "kinds": ["sample", "embedding"], "lookups": 10, "hits": 10,
            "misses": 0, "bytes_peak": 300,
        }
        merged = merge_cache_stats([a, None, b])
        assert merged["capacity_mb"] == 12.0
        assert merged["kinds"] == ["embedding", "sample"]
        assert merged["caches"] == 2
        assert merged["lookups"] == 20
        assert merged["hit_rate"] == pytest.approx(15 / 20)
        assert merged["bytes_peak"] == 300
        assert merged["bytes_peak_sum"] == 400
        assert merge_cache_stats([None, {}]) is None

    def test_merge_fidelity_edge_cases(self):
        assert merge_fidelity([]) is None
        assert merge_fidelity([None, {}]) is None
        a = {
            "debt_score": 1.5, "max_level_seen": 1, "final_level": 0,
            "fanout_scale": 0.5, "staleness_scale": 2.0,
            "degraded_batches": 3, "total_dispatches": 10,
        }
        b = {
            "debt_score": 2.0, "max_level_seen": 2, "final_level": 2,
            "fanout_scale": 0.25, "staleness_scale": 4.0,
            "degraded_batches": 5, "total_dispatches": 20,
        }
        merged = merge_fidelity([a, b])
        assert merged["debt_score"] == pytest.approx(3.5)
        assert merged["max_level_seen"] == 2
        assert merged["final_level"] == 2
        assert merged["fanout_scale"] == 0.5  # config from the first snapshot
        assert merged["degraded_batches"] == 8
        assert merged["total_dispatches"] == 30
        assert merged["controllers"] == 2


class TestCli:
    def test_serve_trace_and_attribution_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main([
            "serve", "tgat", "--scale", "tiny", "--topology", "2n-1xA100-eth",
            "--rate", "400", "--duration", "200", "--trace", str(out),
        ])
        assert code == 0
        assert out.exists()
        capsys.readouterr()
        assert main(["trace", str(out), "--request", "p99"]) == 0
        printed = capsys.readouterr().out
        assert "segment" in printed
        assert "top spans by duration:" in printed

    def test_trace_diff_of_a_file_against_itself(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "serve", "tgat", "--scale", "tiny", "--rate", "300",
            "--duration", "120", "--trace", str(out),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", str(out), "--diff", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "trace diff:" in printed
        assert "(+0.000)" in printed
