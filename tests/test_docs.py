"""The docs tier: CLI reference drift and dead local links.

``docs/CLI.md`` is generated (``repro-dgnn docs``), so the drift test is
exact equality against a fresh render -- regenerate with::

    PYTHONPATH=src python -m repro.cli docs --output docs/CLI.md

The link check walks every markdown file in ``docs/`` plus the README and
resolves each relative link target against the repository tree; external
``http(s)``/``mailto`` links are skipped (CI must not depend on the
network).
"""

import os
import re

import pytest

from repro.cli import render_cli_docs

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)]+)\)")


def _doc_files():
    paths = [os.path.join(REPO_ROOT, "README.md")]
    for name in sorted(os.listdir(DOCS_DIR)):
        if name.endswith(".md"):
            paths.append(os.path.join(DOCS_DIR, name))
    return paths


def test_docs_tier_exists():
    names = {os.path.basename(path) for path in _doc_files()}
    assert {"README.md", "ARCHITECTURE.md", "CLI.md", "INVARIANTS.md"} <= names


def test_cli_reference_matches_the_parser():
    """docs/CLI.md must be regenerated whenever the argparse tree changes."""
    with open(os.path.join(DOCS_DIR, "CLI.md"), encoding="utf-8") as handle:
        committed = handle.read()
    assert committed == render_cli_docs(), (
        "docs/CLI.md drifted from the parser; regenerate with "
        "`PYTHONPATH=src python -m repro.cli docs --output docs/CLI.md`"
    )


def test_cli_reference_is_terminal_width_independent(monkeypatch):
    """The renderer must not fall back to argparse's wrapping formatter."""
    monkeypatch.setenv("COLUMNS", "40")
    narrow = render_cli_docs()
    monkeypatch.setenv("COLUMNS", "200")
    assert narrow == render_cli_docs()


@pytest.mark.parametrize(
    "path", _doc_files(), ids=[os.path.basename(p) for p in _doc_files()]
)
def test_markdown_links_resolve(path):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    broken = []
    for match in _LINK.finditer(text):
        target = match.group(1).strip()
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            broken.append(target)
    assert not broken, f"dead local links in {os.path.basename(path)}: {broken}"
