"""Autoscaler policy: pure decision logic, tested without a simulator."""

import pytest

from repro.serve import AutoscaleConfig, Autoscaler
from repro.serve.router import RoundRobinRouter


def make_autoscaler(cold_start_ms=5.0, num_replicas=None, **config_kwargs):
    """An autoscaler bound to a real router and recording spin callbacks."""
    config = AutoscaleConfig(**config_kwargs)
    size = num_replicas if num_replicas is not None else config.max_replicas
    router = RoundRobinRouter(size)
    ups, downs = [], []

    def spin_up(index, now_ms):
        ups.append((index, now_ms))
        return now_ms + cold_start_ms

    def spin_down(index, now_ms):
        downs.append((index, now_ms))

    scaler = Autoscaler(config)
    scaler.bind(router, size, spin_up=spin_up, spin_down=spin_down, now_ms=0.0)
    return scaler, router, ups, downs


def seed_estimator(router, per_request_ms=10.0, index=0):
    router.notify_complete(index, 1, per_request_ms)


def offer_rate(scaler, per_ms=1.0, count=20, start=0.0):
    """Feed ``count`` arrivals spaced ``per_ms`` apart (rate = 1000/per_ms)."""
    for i in range(count):
        scaler.observe_arrival(start + i * per_ms)
    return start + (count - 1) * per_ms


class TestConfigValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            AutoscaleConfig(min_replicas=0)
        with pytest.raises(ValueError):
            AutoscaleConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscaleConfig(initial_replicas=5, max_replicas=4)
        with pytest.raises(ValueError):
            AutoscaleConfig(low_watermark=0.8, high_watermark=0.7)
        with pytest.raises(ValueError):
            AutoscaleConfig(p99_window=0)

    def test_start_replicas_defaults_to_the_floor(self):
        assert AutoscaleConfig(min_replicas=2, max_replicas=4).start_replicas == 2
        assert AutoscaleConfig(initial_replicas=3).start_replicas == 3

    def test_bind_requires_enough_built_replicas(self):
        scaler = Autoscaler(AutoscaleConfig(max_replicas=4))
        with pytest.raises(ValueError):
            scaler.bind(RoundRobinRouter(2), 2, spin_up=lambda i, t: t,
                        spin_down=lambda i, t: None)

    def test_bind_activates_the_initial_fleet_only(self):
        scaler, router, _, _ = make_autoscaler(min_replicas=2, max_replicas=4)
        assert scaler.fleet_size == 2
        assert router.active_indices() == [0, 1]


class TestSignals:
    def test_arrival_rate_decays_toward_now(self):
        scaler, _, _, _ = make_autoscaler()
        offer_rate(scaler, per_ms=1.0, count=10)  # 10 arrivals over 9 ms
        busy = scaler.arrival_rate_per_s(10.0)
        idle = scaler.arrival_rate_per_s(1000.0)
        assert busy == pytest.approx(1000.0, rel=0.2)
        assert idle < busy / 50  # the estimate falls off in a lull

    def test_utilization_is_none_until_an_estimate_exists(self):
        scaler, router, _, _ = make_autoscaler()
        offer_rate(scaler)
        assert scaler.utilization(20.0) is None
        seed_estimator(router)
        assert scaler.utilization(20.0) is not None

    def test_window_p99_tracks_recent_completions(self):
        scaler, _, _, _ = make_autoscaler(p99_window=4)
        for latency in (1.0, 2.0, 3.0, 100.0, 4.0, 5.0, 6.0, 7.0):
            scaler.observe_completion(0.0, latency)
        # The 100 ms outlier slid out of the 4-sample window.
        assert scaler.window_p99_ms() < 10.0


class TestScaleUp:
    def test_utilization_breach_spins_up_one_pending_replica(self):
        scaler, router, ups, _ = make_autoscaler(
            min_replicas=1, max_replicas=3, up_cooldown_ms=10.0
        )
        seed_estimator(router, 10.0)
        offer_rate(scaler, per_ms=1.0, count=20)  # ~1000 req/s x 10 ms each
        scaler.step(20.0)
        assert ups == [(1, 20.0)]
        assert scaler.fleet_size == 2  # paid for while warming
        assert router.active_indices() == [0]  # not serving yet
        assert scaler.next_ready_ms() == pytest.approx(25.0)
        assert scaler.cold_start_ms == pytest.approx(5.0)

    def test_warmed_replica_is_promoted_into_the_active_set(self):
        scaler, router, _, _ = make_autoscaler(
            min_replicas=1, max_replicas=3, up_cooldown_ms=100.0
        )
        seed_estimator(router, 10.0)
        offer_rate(scaler, per_ms=1.0, count=20)
        scaler.step(20.0)
        scaler.step(25.0)
        assert router.active_indices() == [0, 1]
        assert scaler.next_ready_ms() is None

    def test_up_cooldown_blocks_back_to_back_scale_ups(self):
        scaler, router, ups, _ = make_autoscaler(
            min_replicas=1, max_replicas=4, up_cooldown_ms=50.0
        )
        seed_estimator(router, 10.0)
        offer_rate(scaler, per_ms=1.0, count=20)
        scaler.step(20.0)
        scaler.step(30.0)  # 10 ms later: still cooling down
        assert len(ups) == 1
        scaler.step(75.0)  # past the cooldown, load still high
        assert len(ups) == 2

    def test_slo_breach_scales_up_without_a_utilization_estimate(self):
        scaler, _, ups, _ = make_autoscaler(min_replicas=1, max_replicas=2, slo_ms=50.0)
        for _ in range(8):
            scaler.observe_completion(10.0, 200.0)
        scaler.step(10.0)
        assert ups and "SLO" in scaler.events[0].reason

    def test_never_scales_past_the_ceiling(self):
        scaler, router, ups, _ = make_autoscaler(
            min_replicas=2, max_replicas=2, slo_ms=50.0
        )
        for _ in range(8):
            scaler.observe_completion(10.0, 200.0)
        scaler.step(10.0)
        assert ups == []
        assert scaler.fleet_size == 2


class TestScaleDown:
    def make_idle_two_replica_fleet(self, **kwargs):
        kwargs.setdefault("min_replicas", 1)
        kwargs.setdefault("max_replicas", 2)
        kwargs.setdefault("initial_replicas", 2)
        kwargs.setdefault("down_cooldown_ms", 40.0)
        scaler, router, ups, downs = make_autoscaler(**kwargs)
        seed_estimator(router, 10.0)
        scaler.observe_arrival(0.0)
        scaler.observe_arrival(1.0)
        return scaler, router, ups, downs

    def test_idle_fleet_releases_the_newest_drained_replica(self):
        scaler, router, _, downs = self.make_idle_two_replica_fleet()
        scaler.step(1000.0)  # rate ~2 req/s: utilization way below the low mark
        assert downs == [(1, 1000.0)]
        assert router.active_indices() == [0]
        assert scaler.fleet_size == 1

    def test_busy_replicas_are_not_released(self):
        scaler, router, _, downs = self.make_idle_two_replica_fleet()
        router.notify_dispatch(0, 4)
        router.notify_dispatch(1, 4)
        scaler.step(1000.0)
        assert downs == []

    def test_slo_breach_blocks_scale_down(self):
        scaler, _, _, downs = self.make_idle_two_replica_fleet(slo_ms=50.0)
        for _ in range(8):
            scaler.observe_completion(500.0, 200.0)
        scaler.step(1000.0)
        assert downs == []

    def test_never_scales_below_the_floor(self):
        scaler, _, _, downs = self.make_idle_two_replica_fleet(
            min_replicas=2, max_replicas=2, initial_replicas=2
        )
        scaler.step(1000.0)
        assert downs == []
        assert scaler.fleet_size == 2

    def test_down_cooldown_applies_after_any_scale_event(self):
        scaler, router, ups, downs = make_autoscaler(
            min_replicas=1, max_replicas=2, up_cooldown_ms=10.0,
            down_cooldown_ms=200.0,
        )
        seed_estimator(router, 10.0)
        offer_rate(scaler, per_ms=1.0, count=4)
        scaler.step(20.0)  # scale up at t=20
        assert ups
        # Rate has decayed below the low watermark by t=100, but only 80 ms
        # have passed since the up event: the cooldown is the only blocker.
        assert scaler.utilization(100.0) < scaler.config.low_watermark
        scaler.step(100.0)
        assert downs == []
        scaler.step(250.0)  # past the cooldown
        assert downs


class TestAccounting:
    def test_gpu_time_integral_spans_ownership_windows(self):
        scaler, router, _, _ = make_autoscaler(
            min_replicas=1, max_replicas=2, up_cooldown_ms=10.0,
            down_cooldown_ms=40.0, cold_start_ms=5.0,
        )
        seed_estimator(router, 10.0)
        offer_rate(scaler, per_ms=1.0, count=20)
        scaler.step(20.0)  # replica 1 owned from t=20 (paid while warming)
        assert scaler.gpu_time_ms(100.0) == pytest.approx(100.0 + 80.0)
        scaler.step(500.0)  # idle: replica 1 released at t=500
        assert scaler.gpu_time_ms(1000.0) == pytest.approx(1000.0 + 480.0)

    def test_stats_payload_summarises_the_run(self):
        scaler, router, _, _ = make_autoscaler(
            min_replicas=1, max_replicas=3, up_cooldown_ms=10.0
        )
        seed_estimator(router, 10.0)
        offer_rate(scaler, per_ms=1.0, count=20)
        scaler.step(20.0)
        stats = scaler.stats(100.0)
        assert stats["min_replicas"] == 1
        assert stats["max_replicas"] == 3
        assert stats["scale_ups"] == 1
        assert stats["scale_downs"] == 0
        assert stats["final_fleet"] == 2
        assert stats["cold_start_ms"] == pytest.approx(5.0)
        (event,) = stats["events"]
        assert event["action"] == "up"
        assert event["cold_start_ms"] == pytest.approx(5.0)


class TestAutoscalingExperiment:
    def test_elastic_beats_every_static_fleet_on_some_axis(self):
        """The acceptance criterion: under a flash crowd the elastic fleet
        dominates each static size on p99 or on the GPU-time integral."""
        from repro.experiments import run_experiment

        result = run_experiment("autoscaling", scale="tiny", seed=0)
        rows = {row["fleet"]: row for row in result.rows}
        elastic = rows["elastic"]
        assert elastic["scale_ups"] >= 1
        assert elastic["cold_start_ms"] > 0
        for name, row in rows.items():
            if name == "elastic":
                continue
            size = row["replicas"]
            assert elastic[f"beats_static_{size}"] in ("p99", "gpu_time", "p99+gpu_time")
