"""Cache-aware serving tests: single-model, replicated, sharded, CLI, bench.

Pins down the acceptance behaviour: at a nonzero staleness bound with a warm
cache, overlap serving strictly beats its uncached counterpart on p99 total
latency (measured on the simulated clock, so the comparison is exact and
deterministic), with hit-rate and occupancy telemetry in the report.
"""

import numpy as np
import pytest

from repro.cache import make_model_cache, merge_cache_stats
from repro.cli import main
from repro.datasets import load
from repro.graph.partition import make_partition
from repro.hw import Machine
from repro.models.tgat import TGAT, TGATConfig
from repro.serve import (
    InferenceServer,
    ScaleOutServer,
    ShardedModel,
    build_replicas,
    generate_requests,
    make_arrival_process,
    make_policy,
    make_router,
)


@pytest.fixture(scope="module")
def dataset():
    return load("wikipedia", scale="tiny")


def make_requests(dataset, seed=0, rate=400.0, duration_ms=100.0, events=1):
    arrivals = make_arrival_process("poisson", rate, seed=seed)
    return generate_requests(
        dataset.stream,
        arrivals,
        duration_ms=duration_ms,
        events_per_request=events,
        slo_ms=50.0,
    )


def build_tgat(machine, dataset, seed=0):
    with machine.activate():
        return TGAT(
            machine, dataset, TGATConfig(num_neighbors=5, batch_size=64, seed=seed)
        )


def serve_single(dataset, cache_kwargs, overlap, seed=0):
    machine = Machine.cpu_gpu()
    model = build_tgat(machine, dataset, seed=seed)
    if cache_kwargs is not None:
        make_model_cache(model, **cache_kwargs)
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    server = InferenceServer(model, policy, overlap=overlap)
    requests = make_requests(dataset, seed=seed)
    server.serve(requests, label="warm", arrival_name="poisson")
    return server.serve(
        make_requests(dataset, seed=seed),
        label="measured",
        arrival_name="poisson",
        warm_up=False,
    )


def test_warm_cached_overlap_beats_uncached_on_p99(dataset):
    """The acceptance criterion, on the simulated clock."""
    span = dataset.stream.time_span
    staleness = (span[1] - span[0]) * 2.0
    uncached = serve_single(dataset, None, overlap=True)
    cached = serve_single(
        dataset,
        dict(policy="lru", capacity_mb=32.0, staleness_ms=staleness),
        overlap=True,
    )
    assert cached.cache is not None
    assert cached.cache["hit_rate"] > 0.3
    assert cached.cache["bytes_peak"] > 0
    assert cached.total_latency().p99_ms < uncached.total_latency().p99_ms
    assert cached.throughput_rps >= uncached.throughput_rps
    # Telemetry surfaces in both machine- and human-readable forms.
    summary = cached.summary()
    assert summary["cache_hit_rate"] == cached.cache["hit_rate"]
    assert "cache_mb" in summary
    assert "cache hits:" in cached.format_table()


def test_staleness_zero_serving_is_result_identical(dataset):
    uncached = serve_single(dataset, None, overlap=False)
    cached = serve_single(
        dataset, dict(policy="lru", capacity_mb=8.0, staleness_ms=0.0), overlap=False
    )
    assert cached.cache["hits"] == 0
    assert cached.completed == uncached.completed
    # Same requests were batched identically (cache bookkeeping shifts the
    # clock, not the batching order).
    assert [r.request_id for r in cached.requests] == [
        r.request_id for r in uncached.requests
    ]


def test_uncached_report_has_no_cache_section(dataset):
    report = serve_single(dataset, None, overlap=False)
    assert report.cache is None
    assert "cache_hit_rate" not in report.summary()
    assert "cache hits:" not in report.format_table()


def test_replicated_serving_merges_per_replica_caches(dataset):
    machine = Machine.from_spec("2xA100-pcie")
    with machine.activate():
        replicas = build_replicas(
            machine,
            lambda: TGAT(
                machine, dataset, TGATConfig(num_neighbors=5, batch_size=64, seed=0)
            ),
            machine.gpus,
        )
    for replica in replicas:
        make_model_cache(replica, policy="lru", capacity_mb=8.0, staleness_ms=1e12)
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    server = ScaleOutServer(replicas, policy, make_router("round-robin", 2))
    report = server.serve(make_requests(dataset, events=2), arrival_name="poisson")
    assert report.cache is not None
    assert report.cache["caches"] == 2
    assert report.cache["lookups"] == sum(
        replica.cache_stats()["lookups"] for replica in replicas
    )
    # Cross-replica coherence: dispatches to replica A invalidated entries
    # in replica B's cache (and vice versa).
    assert all(replica.cache_stats()["invalidations"] > 0 for replica in replicas)


def test_replica_caches_are_independent_stores(dataset):
    machine = Machine.from_spec("2xA100-pcie")
    with machine.activate():
        replicas = build_replicas(
            machine,
            lambda: TGAT(
                machine, dataset, TGATConfig(num_neighbors=5, batch_size=64, seed=0)
            ),
            machine.gpus,
        )
    caches = [
        make_model_cache(replica, policy="lru", capacity_mb=8.0, staleness_ms=1e12)
        for replica in replicas
    ]
    assert caches[0].embeddings.device.name != caches[1].embeddings.device.name
    merged = merge_cache_stats([c.stats() for c in caches])
    assert merged["caches"] == 2
    assert merge_cache_stats([None, None]) is None


def test_sharded_serving_reports_and_invalidates_across_shards(dataset):
    machine = Machine.from_spec("2xA100-nvlink")
    with machine.activate():
        replicas = build_replicas(
            machine,
            lambda: TGAT(
                machine, dataset, TGATConfig(num_neighbors=5, batch_size=64, seed=0)
            ),
            machine.gpus,
        )
        for replica in replicas:
            make_model_cache(replica, policy="lru", capacity_mb=8.0, staleness_ms=1e12)
        partition = make_partition("hash", dataset.stream, 2, seed=0)
        sharded = ShardedModel(replicas, partition)
        policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
        server = InferenceServer(sharded, policy, overlap=False)
        report = server.serve(make_requests(dataset, events=2), arrival_name="poisson")
    assert report.cache is not None
    assert report.cache["caches"] == 2
    merged = sharded.cache_stats()
    assert merged["lookups"] == report.cache["lookups"]
    # Cross-shard invalidation: each shard dropped entries touched by the
    # *other* shard's slice of the batches.
    assert all(replica.cache_stats()["invalidations"] > 0 for replica in replicas)


def test_sharded_uncached_still_reports_no_cache(dataset):
    machine = Machine.from_spec("2xA100-nvlink")
    with machine.activate():
        replicas = build_replicas(
            machine,
            lambda: TGAT(
                machine, dataset, TGATConfig(num_neighbors=5, batch_size=64, seed=0)
            ),
            machine.gpus,
        )
        partition = make_partition("hash", dataset.stream, 2, seed=0)
        sharded = ShardedModel(replicas, partition)
        assert sharded.cache_stats() is None


def test_cli_serve_cache_flags(dataset, capsys):
    code = main([
        "serve", "tgat", "--scale", "tiny", "--rate", "300", "--duration", "60",
        "--cache", "--cache-policy", "degree", "--cache-mb", "8",
        "--staleness-ms", "1e9",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "cache:" in out and "degree" in out
    assert "cache hits:" in out


def test_cli_serve_cache_rejects_unsupported_models(capsys):
    code = main([
        "serve", "ldg", "--scale", "tiny", "--rate", "300", "--duration", "60",
        "--cache",
    ])
    assert code == 2
    assert "does not support request caching" in capsys.readouterr().err


def test_cli_serve_cache_rejects_bad_budget(capsys):
    code = main([
        "serve", "tgat", "--scale", "tiny", "--rate", "300", "--duration", "60",
        "--cache", "--cache-mb", "0",
    ])
    assert code == 2
    assert "capacity" in capsys.readouterr().err


def test_cache_ablation_experiment_rows(dataset):
    from repro.experiments import run_experiment

    result = run_experiment(
        "cache_ablation",
        scale="tiny",
        policies=("lru",),
        capacities_mb=(8.0,),
        staleness_fractions=(0.0, 0.5),
        duration_ms=60.0,
    )
    assert result.rows[0]["policy"] == "uncached"
    cells = {
        (row["policy"], row["staleness_ms"]): row for row in result.rows[1:]
    }
    assert len(cells) == 2
    warm = next(row for key, row in cells.items() if key[1] and key[1] > 0)
    cold = next(row for key, row in cells.items() if not key[1])
    assert cold["hit_rate"] == 0
    assert warm["hit_rate"] > 0
    assert warm["p99_ms"] < result.rows[0]["p99_ms"]


def test_bench_registry_and_cached_scenarios_report_extras():
    from repro.bench import available_scenarios, run_bench, to_payload

    names = available_scenarios()
    assert {"serving_blocking_cached", "serving_overlap_cached"} <= set(names)
    result = run_bench(
        scenarios=["serving_overlap", "serving_overlap_cached"],
        seed=0,
        reps=1,
        quick=True,
    )
    payload = to_payload(result, sha="deadbeef")
    cached = payload["serving_overlap_cached"]["extras"]
    uncached = payload["serving_overlap"]["extras"]
    assert cached["cache_hit_rate"] > 0.3
    assert cached["p99_ms"] < uncached["p99_ms"]


def test_property_serving_cache_counters_are_consistent(dataset):
    """Seeded sweep: stats identities and byte budgets hold after serving."""
    for seed in (0, 1, 2):
        report = serve_single(
            dataset,
            dict(policy="lfu", capacity_mb=0.05, staleness_ms=1e9),
            overlap=(seed % 2 == 0),
            seed=seed,
        )
        cache = report.cache
        assert cache["hits"] + cache["misses"] == cache["lookups"]
        budget_bytes = cache["capacity_mb"] * 1e6
        assert 0 <= cache["bytes_current"] <= budget_bytes
        assert cache["bytes_peak"] <= budget_bytes
        for kind_stats in cache["by_kind"].values():
            assert kind_stats["hits"] + kind_stats["misses"] == kind_stats["lookups"]
