"""Percentile statistics (repro.core.stats)."""

import numpy as np
import pytest

from repro.core import LatencySummary, percentile


def test_percentile_matches_numpy_linear_interpolation():
    rng = np.random.default_rng(0)
    values = rng.uniform(0.0, 100.0, size=137).tolist()
    for q in (0.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0):
        assert percentile(values, q) == pytest.approx(np.percentile(values, q))


def test_percentile_single_value_and_bounds():
    assert percentile([42.0], 99.0) == 42.0
    assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0
    assert percentile([1.0, 2.0, 3.0], 100.0) == 3.0


def test_percentile_rejects_empty_and_bad_q():
    with pytest.raises(ValueError):
        percentile([], 50.0)
    with pytest.raises(ValueError):
        percentile([1.0], 101.0)
    with pytest.raises(ValueError):
        percentile([1.0], -1.0)


def test_latency_summary_from_values():
    values = [float(v) for v in range(1, 101)]
    summary = LatencySummary.from_values(values)
    assert summary.count == 100
    assert summary.mean_ms == pytest.approx(50.5)
    assert summary.min_ms == 1.0
    assert summary.max_ms == 100.0
    assert summary.p50_ms == pytest.approx(np.percentile(values, 50))
    assert summary.p99_ms == pytest.approx(np.percentile(values, 99))
    row = summary.as_dict(prefix="queue_")
    assert set(row) == {
        "queue_mean_ms", "queue_p50_ms", "queue_p95_ms", "queue_p99_ms", "queue_max_ms",
    }


def test_latency_summary_rejects_empty():
    with pytest.raises(ValueError):
        LatencySummary.from_values([])
