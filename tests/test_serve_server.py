"""End-to-end serving runs on the simulated machine."""

import pytest

from repro.datasets import load
from repro.hw import Machine
from repro.models.jodie import JODIE, JODIEConfig
from repro.models.tgat import TGAT, TGATConfig
from repro.serve import (
    InferenceServer,
    PoissonProcess,
    applicable_policy_overrides,
    generate_requests,
    make_policy,
)


@pytest.fixture(scope="module")
def tiny_wikipedia():
    return load("wikipedia", scale="tiny")


def _tgat(dataset, **overrides):
    machine = Machine.cpu_gpu()
    config = TGATConfig(num_neighbors=5, batch_size=8, **overrides)
    with machine.activate():
        return TGAT(machine, dataset, config)


def _requests(dataset, rate, duration_ms=150.0, seed=3, slo_ms=50.0):
    return generate_requests(
        dataset.stream, PoissonProcess(rate, seed=seed),
        duration_ms=duration_ms, events_per_request=1, slo_ms=slo_ms,
    )


def _serve(dataset, rate, overlap, policy_name="timeout", **request_kwargs):
    model = _tgat(dataset)
    policy = make_policy(
        policy_name,
        max_batch_size=8,
        **applicable_policy_overrides(policy_name, batch_timeout_ms=4.0, slo_ms=50.0),
    )
    server = InferenceServer(model, policy, overlap=overlap)
    return server.serve(_requests(dataset, rate, **request_kwargs), arrival_name="poisson")


def test_server_completes_every_request_with_consistent_latencies(tiny_wikipedia):
    report = _serve(tiny_wikipedia, rate=300.0, overlap=False)
    assert report.offered > 0
    assert report.completed == report.offered
    for request in report.requests:
        assert request.is_completed
        assert request.queue_ms >= 0.0
        assert request.service_ms > 0.0
        assert request.total_ms == pytest.approx(request.queue_ms + request.service_ms)
        assert 1 <= request.batch_size <= 8
    assert report.duration_ms > 0.0
    assert report.throughput_rps > 0.0
    assert 0.0 < report.gpu_utilization < 1.0
    assert 0.0 < report.cpu_utilization <= 1.0


def test_server_report_summary_has_the_headline_columns(tiny_wikipedia):
    report = _serve(tiny_wikipedia, rate=300.0, overlap=False)
    row = report.summary()
    for column in (
        "policy", "arrival", "overlap", "offered", "completed", "throughput_rps",
        "slo_violation_rate", "mean_batch_size", "gpu_utilization",
        "p50_ms", "p95_ms", "p99_ms", "queue_p99_ms", "service_p99_ms",
    ):
        assert column in row, column


def test_overlap_beats_blocking_on_p99_under_load(tiny_wikipedia):
    """The acceptance property: same arrival sequence, strictly lower p99."""
    blocking = _serve(tiny_wikipedia, rate=1600.0, overlap=False, duration_ms=200.0)
    overlapped = _serve(tiny_wikipedia, rate=1600.0, overlap=True, duration_ms=200.0)
    assert blocking.offered == overlapped.offered  # identical workload
    assert overlapped.total_latency().p99_ms < blocking.total_latency().p99_ms
    assert overlapped.throughput_rps >= blocking.throughput_rps


def test_overlap_requires_the_overlap_protocol(tiny_wikipedia):
    machine = Machine.cpu_gpu()
    with machine.activate():
        jodie = JODIE(machine, tiny_wikipedia, JODIEConfig())
    with pytest.raises(TypeError, match="overlap protocol"):
        InferenceServer(jodie, make_policy("fifo"), overlap=True)


def test_non_event_stream_models_fail_with_a_clear_error(tiny_wikipedia):
    machine = Machine.cpu_gpu()
    with machine.activate():
        jodie = JODIE(machine, tiny_wikipedia, JODIEConfig())
    server = InferenceServer(jodie, make_policy("fifo"), overlap=False)
    with pytest.raises(TypeError, match="make_request_batch"):
        server.serve(_requests(tiny_wikipedia, rate=200.0))


def test_empty_workload_returns_an_empty_report(tiny_wikipedia):
    model = _tgat(tiny_wikipedia)
    server = InferenceServer(model, make_policy("fifo"))
    report = server.serve([], arrival_name="poisson")
    assert report.offered == 0
    assert report.completed == 0
    assert report.throughput_rps == 0.0


def test_slo_violations_are_counted(tiny_wikipedia):
    # A 1 ms SLO is unmeetable (service alone exceeds it): every request counts.
    report = _serve(tiny_wikipedia, rate=300.0, overlap=False, slo_ms=1.0, duration_ms=80.0)
    assert report.completed > 0
    assert report.slo_violation_rate == 1.0


def test_server_runs_are_reproducible(tiny_wikipedia):
    first = _serve(tiny_wikipedia, rate=500.0, overlap=False, duration_ms=120.0)
    second = _serve(tiny_wikipedia, rate=500.0, overlap=False, duration_ms=120.0)
    assert first.summary() == second.summary()
    assert [r.completed_ms for r in first.requests] == [r.completed_ms for r in second.requests]
