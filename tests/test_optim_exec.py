"""Executable overlap/pipelining schedulers (paper Sec. 5, executed)."""

import numpy as np
import pytest

from repro.core import Profiler, compute_breakdown
from repro.datasets import load
from repro.hw import Machine
from repro.models.evolvegcn import EvolveGCN, EvolveGCNConfig
from repro.models.tgat import TGAT, TGATConfig
from repro.optim import (
    OverlappedRunner,
    PipelinedEvolveGCN,
    estimate_overlap_speedup,
    estimate_pipeline_speedup,
)

TGAT_CONFIG = TGATConfig(num_neighbors=10, batch_size=8)


def tgat_setup(scale="tiny", config=TGAT_CONFIG, batches=4):
    machine = Machine.cpu_gpu()
    dataset = load("wikipedia", scale=scale)
    with machine.activate():
        model = TGAT(machine, dataset, config)
        batch_list = list(model.iteration_batches())[:batches]
        model.warm_up(batch_list[0])
    return (machine, model, batch_list)


class TestOverlappedRunner:
    def test_requires_overlap_protocol(self):
        machine = Machine.cpu_gpu()
        dataset = load("bitcoin-alpha", scale="tiny")
        with machine.activate():
            model = EvolveGCN(machine, dataset, EvolveGCNConfig(variant="O"))
        with pytest.raises(TypeError):
            OverlappedRunner(model)

    def test_empty_run_is_harmless(self):
        machine, model, _ = tgat_setup(batches=1)
        with machine.activate():
            result = OverlappedRunner(model).run([])
        assert result.outputs == []
        assert result.steady_state_ms() == 0.0

    def test_outputs_match_sequential_numerics(self):
        machine, model, batches = tgat_setup()
        with machine.activate():
            sequential = OverlappedRunner(model).run_sequential(batches)
        machine2, model2, batches2 = tgat_setup()
        with machine2.activate():
            runner = OverlappedRunner(model2)
            overlapped = runner.run(batches2)
        assert len(sequential.outputs) == len(overlapped.outputs)
        for expected, actual in zip(sequential.outputs, overlapped.outputs):
            assert np.allclose(expected.data, actual.data)

    def test_overlap_is_not_slower(self):
        machine, model, batches = tgat_setup()
        with machine.activate():
            sequential = OverlappedRunner(model).run_sequential(batches)
        machine2, model2, batches2 = tgat_setup()
        with machine2.activate():
            runner = OverlappedRunner(model2)
            runner.prefetch(batches2[0])
            overlapped = runner.run(batches2)
        assert overlapped.steady_state_ms() <= sequential.steady_state_ms() + 1e-6

    def test_sampling_runs_on_prefetch_stream(self):
        machine, model, batches = tgat_setup(batches=2)
        with machine.activate():
            runner = OverlappedRunner(model)
            runner.run(batches)
        stream = runner.stream
        assert stream.busy_ms() > 0
        sampled = machine.events.on_stream(machine.cpu.name, runner.stream_name)
        assert any(e.name == "temporal_neighbor_sampling" for e in sampled)

    def test_executed_speedup_close_to_analytic_on_small_config(self):
        """Acceptance: executed within 15% of the analytic estimate."""
        config = TGATConfig(num_neighbors=50, batch_size=16)
        machine, model, batches = tgat_setup(scale="small", config=config, batches=5)
        with machine.activate():
            sequential = OverlappedRunner(model).run_sequential(batches)
            profiler = Profiler(machine)
            with profiler.capture("analytic"):
                model.inference_iteration(batches[-1])
        analytic = estimate_overlap_speedup(profiler.last_profile)

        machine2, model2, batches2 = tgat_setup(scale="small", config=config, batches=5)
        with machine2.activate():
            runner = OverlappedRunner(model2)
            runner.prefetch(batches2[0])
            overlapped = runner.run(batches2)
        executed_speedup = sequential.steady_state_ms() / overlapped.steady_state_ms()
        assert executed_speedup == pytest.approx(analytic.speedup, rel=0.15)


class TestPipelinedEvolveGCN:
    @staticmethod
    def window(scale="tiny", count=3):
        dataset = load("bitcoin-alpha", scale=scale)
        return (dataset, [dataset.snapshots[i] for i in range(count)])

    def test_rejects_h_variant(self):
        machine = Machine.cpu_gpu()
        dataset, _ = self.window()
        with machine.activate():
            model = EvolveGCN(machine, dataset, EvolveGCNConfig(variant="H"))
        with pytest.raises(ValueError):
            PipelinedEvolveGCN(model)

    def test_outputs_match_hoisted_run(self):
        dataset, snapshots = self.window()
        machine = Machine.cpu_gpu()
        with machine.activate():
            model = EvolveGCN(machine, dataset, EvolveGCNConfig(variant="O", seed=7))
            model.warm_up(snapshots[0])
            streamed = PipelinedEvolveGCN(model, use_streams=True).run_window(snapshots)
        machine2 = Machine.cpu_gpu()
        with machine2.activate():
            model2 = EvolveGCN(machine2, dataset, EvolveGCNConfig(variant="O", seed=7))
            model2.warm_up(snapshots[0])
            hoisted = PipelinedEvolveGCN(model2, use_streams=False).run_window(snapshots)
        for expected, actual in zip(hoisted, streamed):
            assert np.allclose(expected.data, actual.data)

    def test_rnn_and_gnn_issue_on_separate_streams(self):
        dataset, snapshots = self.window()
        machine = Machine.cpu_gpu()
        with machine.activate():
            model = EvolveGCN(machine, dataset, EvolveGCNConfig(variant="O"))
            model.warm_up(snapshots[0])
            PipelinedEvolveGCN(model).run_window(snapshots)
        gpu_name = machine.gpu.name
        rnn_events = machine.events.on_stream(gpu_name, PipelinedEvolveGCN.RNN_STREAM)
        gnn_events = machine.events.on_stream(gpu_name, PipelinedEvolveGCN.GNN_STREAM)
        assert rnn_events and gnn_events
        # Each snapshot's GNN starts only after its weights are ready.
        first_gnn_kernel = next(e for e in gnn_events if e.kind == "kernel")
        per_snapshot = len([e for e in rnn_events if e.kind == "kernel"]) // len(snapshots)
        first_weights_done = sorted(
            e.end_ms for e in rnn_events if e.kind == "kernel"
        )[per_snapshot - 1]
        assert first_gnn_kernel.start_ms >= first_weights_done - 1e-9

    def test_pipelined_window_is_not_slower(self):
        dataset, snapshots = self.window()
        machine = Machine.cpu_gpu()
        with machine.activate():
            model = EvolveGCN(machine, dataset, EvolveGCNConfig(variant="O"))
            model.warm_up(snapshots[0])
            profiler = Profiler(machine)
            with profiler.capture("seq"):
                for snapshot in snapshots:
                    model.inference_iteration(snapshot)
        sequential_ms = profiler.last_profile.elapsed_ms
        machine2 = Machine.cpu_gpu()
        with machine2.activate():
            model2 = EvolveGCN(machine2, dataset, EvolveGCNConfig(variant="O"))
            model2.warm_up(snapshots[0])
            profiler2 = Profiler(machine2)
            with profiler2.capture("pip"):
                PipelinedEvolveGCN(model2).run_window(snapshots)
        assert profiler2.last_profile.elapsed_ms <= sequential_ms + 1e-6

    def test_executed_speedup_close_to_analytic_on_small_config(self):
        """Acceptance: executed within 15% of the analytic estimate."""
        dataset, snapshots = self.window(scale="small", count=4)
        machine = Machine.cpu_gpu()
        with machine.activate():
            model = EvolveGCN(machine, dataset, EvolveGCNConfig(variant="O"))
            model.warm_up(snapshots[0])
            profiler = Profiler(machine)
            with profiler.capture("seq"):
                for snapshot in snapshots:
                    model.inference_iteration(snapshot)
        sequential = profiler.last_profile
        analytic = estimate_pipeline_speedup(compute_breakdown(sequential), "RNN", "GNN")
        machine2 = Machine.cpu_gpu()
        with machine2.activate():
            model2 = EvolveGCN(machine2, dataset, EvolveGCNConfig(variant="O"))
            model2.warm_up(snapshots[0])
            profiler2 = Profiler(machine2)
            with profiler2.capture("pip"):
                PipelinedEvolveGCN(model2).run_window(snapshots)
        executed_speedup = sequential.elapsed_ms / profiler2.last_profile.elapsed_ms
        assert executed_speedup == pytest.approx(analytic.speedup, rel=0.15)
