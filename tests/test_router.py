"""Router coverage: dispatch invariants of RR / JSQ / least-latency."""

import pytest

from repro.serve.router import (
    JoinShortestQueueRouter,
    LeastLatencyRouter,
    RoundRobinRouter,
    available_routers,
    make_router,
)


class TestRoundRobin:
    def test_cycles_through_replicas(self):
        router = RoundRobinRouter(3)
        picks = [router.route(4, now_ms=i) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_ignores_load(self):
        router = RoundRobinRouter(2)
        router.notify_dispatch(1, 100)  # replica 1 deeply backlogged
        assert router.route(4, 0.0) == 0
        assert router.route(4, 0.0) == 1  # still gets its turn


class TestJoinShortestQueue:
    def test_prefers_emptiest_replica(self):
        router = JoinShortestQueueRouter(3)
        router.notify_dispatch(0, 8)
        router.notify_dispatch(1, 4)
        assert router.route(4, 0.0) == 2

    def test_ties_break_to_lowest_index(self):
        router = JoinShortestQueueRouter(4)
        assert router.route(4, 0.0) == 0

    def test_completions_release_queue_depth(self):
        router = JoinShortestQueueRouter(2)
        router.notify_dispatch(0, 8)
        router.notify_dispatch(1, 4)
        router.notify_complete(0, 8, service_ms=5.0)
        assert router.route(4, 0.0) == 0
        assert router.queue_depths() == [0, 4]

    def test_queue_depth_spread_bounded_under_feedback(self):
        """With uniform batches and immediate accounting, JSQ keeps the
        max/min in-flight spread within one batch."""
        router = JoinShortestQueueRouter(4)
        batch = 4
        for _ in range(40):
            index = router.route(batch, 0.0)
            router.notify_dispatch(index, batch)
        depths = router.queue_depths()
        assert max(depths) - min(depths) <= batch

    def test_round_robin_can_skew_where_jsq_cannot(self):
        """A replica that never completes starves under RR but not JSQ."""
        rr, jsq = (RoundRobinRouter(2), JoinShortestQueueRouter(2))
        for router in (rr, jsq):
            for _ in range(10):
                index = router.route(1, 0.0)
                router.notify_dispatch(index, 1)
                if index == 1:
                    router.notify_complete(index, 1, 1.0)  # only r1 completes
        assert max(rr.queue_depths()) == 5
        assert max(jsq.queue_depths()) <= 2


class TestLeastLatency:
    def test_explores_unobserved_replicas_first(self):
        router = LeastLatencyRouter(2)
        router.notify_dispatch(0, 4)
        router.notify_complete(0, 4, service_ms=4.0)  # r0 has an estimate
        assert router.route(4, 0.0) == 1  # r1 unknown -> explored

    def test_picks_smallest_estimated_completion(self):
        router = LeastLatencyRouter(2)
        # r0: fast (1 ms/request) but backlogged; r1: slow (10 ms/request), idle.
        router.notify_dispatch(0, 4)
        router.notify_complete(0, 4, service_ms=4.0)
        router.notify_dispatch(1, 4)
        router.notify_complete(1, 4, service_ms=40.0)
        router.notify_dispatch(0, 6)  # r0 now has 6 in flight
        # r0 estimate: (6+4)*1 = 10; r1 estimate: (0+4)*10 = 40 -> r0 wins.
        assert router.route(4, 0.0) == 0
        router.notify_dispatch(0, 100)
        # r0 estimate now (106+4)*1 = 110 > 40 -> r1 wins.
        assert router.route(4, 0.0) == 1

    def test_estimator_tracks_per_replica_speeds(self):
        router = LeastLatencyRouter(2)
        router.notify_complete(0, 4, service_ms=4.0)
        router.notify_complete(1, 4, service_ms=40.0)
        assert router.replicas[0].per_request_ms == pytest.approx(1.0)
        assert router.replicas[1].per_request_ms == pytest.approx(10.0)


class TestRegistry:
    def test_available_routers(self):
        assert available_routers() == ["jsq", "least-latency", "round-robin"]

    def test_make_router(self):
        for name in available_routers():
            router = make_router(name, 3)
            assert router.num_replicas == 3
            assert name in router.describe()

    def test_make_router_unknown(self):
        with pytest.raises(KeyError):
            make_router("random", 2)

    def test_rejects_zero_replicas(self):
        with pytest.raises(ValueError):
            RoundRobinRouter(0)

    def test_completion_accounting_never_goes_negative(self):
        router = JoinShortestQueueRouter(1)
        router.notify_complete(0, 8, service_ms=1.0)  # spurious completion
        assert router.queue_depths() == [0]


class TestActiveSet:
    """Autoscaler-driven masking: inactive replicas receive no new batches."""

    def test_all_replicas_start_active(self):
        router = make_router("round-robin", 3)
        assert router.active_indices() == [0, 1, 2]
        assert all(router.is_active(i) for i in range(3))

    def test_round_robin_skips_inactive_replicas(self):
        router = RoundRobinRouter(3)
        router.set_active([0, 2])
        picks = [router.route(4, 0.0) for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_jsq_considers_only_the_active_set(self):
        router = JoinShortestQueueRouter(3)
        router.set_active([0, 1])
        router.notify_dispatch(0, 8)
        router.notify_dispatch(1, 4)
        # Replica 2 is empty but inactive; 1 is the shallowest active queue.
        assert router.route(4, 0.0) == 1

    def test_least_latency_considers_only_the_active_set(self):
        router = LeastLatencyRouter(3)
        router.notify_complete(0, 4, service_ms=4.0)
        router.notify_complete(1, 4, service_ms=40.0)
        router.set_active([1, 2])
        # Replica 0 is the fastest but inactive; 2 is unexplored (preferred).
        assert router.route(4, 0.0) == 2

    def test_reactivated_replica_keeps_its_warm_estimator(self):
        router = LeastLatencyRouter(2)
        router.notify_complete(1, 4, service_ms=8.0)
        router.set_active([0])
        router.set_active([0, 1])
        assert router.replicas[1].per_request_ms == pytest.approx(2.0)

    def test_set_active_validates_its_input(self):
        router = RoundRobinRouter(2)
        with pytest.raises(ValueError):
            router.set_active([])
        with pytest.raises(ValueError):
            router.set_active([0, 5])
