"""Tensor operators: numerics plus kernel charging."""

import numpy as np
import pytest

from repro.hw import KERNEL, Machine
from repro.tensor import Tensor, ops
from repro.tensor.tensor import DeviceMismatchError


@pytest.fixture
def machine():
    m = Machine.cpu_gpu()
    m.initialize_gpu(model_bytes=0)
    return m


def kernels(machine):
    return [e for e in machine.events if e.kind == KERNEL]


class TestKernelCharging:
    def test_matmul_charges_one_kernel_with_flops(self, machine):
        with machine.activate():
            a = Tensor(np.ones((8, 4), dtype=np.float32), machine.cpu)
            b = Tensor(np.ones((4, 6), dtype=np.float32), machine.cpu)
            out = ops.matmul(a, b)
        assert np.allclose(out.data, 4.0)
        recorded = kernels(machine)
        assert len(recorded) == 1
        assert recorded[0].name == "gemm"
        assert recorded[0].resource == machine.cpu.name
        # 2*m*k*n multiply-accumulate FLOPs.
        assert recorded[0].flops == pytest.approx(2 * 8 * 4 * 6)

    def test_gpu_op_lands_on_gpu_queue(self, machine):
        with machine.activate():
            x = Tensor(np.ones((16, 16), dtype=np.float32), machine.gpu)
            ops.relu(x)
        recorded = kernels(machine)
        assert recorded[-1].resource == machine.gpu.name
        assert machine.gpu.busy_ms() > 0

    def test_elementwise_numerics_and_charge(self, machine):
        with machine.activate():
            x = Tensor(np.array([-1.0, 0.0, 2.0], dtype=np.float32), machine.cpu)
            y = ops.relu(x)
            z = ops.add(y, 1.0)
        assert np.allclose(y.data, [0.0, 0.0, 2.0])
        assert np.allclose(z.data, [1.0, 1.0, 3.0])
        assert [e.name for e in kernels(machine)] == ["relu", "add"]

    def test_ops_without_machine_are_pure(self):
        x = Tensor(np.ones(4, dtype=np.float32), Machine.cpu_only().cpu)
        out = ops.mul(x, 3.0)
        assert np.allclose(out.data, 3.0)

    def test_reshape_is_free(self, machine):
        with machine.activate():
            x = Tensor(np.ones((2, 6), dtype=np.float32), machine.cpu)
            before = len(kernels(machine))
            y = ops.reshape(x, (3, 4))
        assert y.shape == (3, 4)
        assert len(kernels(machine)) == before

    def test_device_mismatch_raises(self, machine):
        with machine.activate():
            a = Tensor(np.ones(3, dtype=np.float32), machine.cpu)
            b = Tensor(np.ones(3, dtype=np.float32), machine.gpu)
            with pytest.raises(DeviceMismatchError):
                ops.add(a, b)


class TestGatherScatter:
    def test_gather_rows(self, machine):
        with machine.activate():
            table = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3), machine.cpu)
            out = ops.gather_rows(table, [2, 0])
        assert np.allclose(out.data, [[6, 7, 8], [0, 1, 2]])
        assert kernels(machine)[-1].name == "gather"

    def test_scatter_rows_does_not_mutate(self, machine):
        with machine.activate():
            base = Tensor(np.zeros((3, 2), dtype=np.float32), machine.cpu)
            updates = Tensor(np.ones((1, 2), dtype=np.float32), machine.cpu)
            out = ops.scatter_rows(base, [1], updates)
        assert np.allclose(base.data, 0.0)
        assert np.allclose(out.data[1], 1.0)


class TestStreamIssue:
    def test_ops_issue_onto_current_stream(self, machine):
        stream = machine.stream(machine.gpu, "side")
        with machine.activate():
            x = Tensor(np.ones((8, 8), dtype=np.float32), machine.gpu)
            ops.relu(x)
            with machine.use_stream(stream):
                ops.relu(x)
        events = kernels(machine)
        assert events[-2].stream == "default"
        assert events[-1].stream == "side"
        assert stream.busy_ms() > 0
