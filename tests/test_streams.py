"""Stream semantics: overlap, events, per-stream sync, seed equivalence."""

import pytest

from repro.hw import Machine
from repro.hw.stream import union_busy_ms


@pytest.fixture
def machine():
    m = Machine.cpu_gpu()
    m.initialize_gpu(model_bytes=0)
    return m


class TestCrossStreamOverlap:
    def test_kernels_on_different_streams_overlap(self, machine):
        a = machine.stream(machine.gpu, "a")
        b = machine.stream(machine.gpu, "b")
        with machine.use_stream(a):
            first = machine.launch_kernel(machine.gpu, "ka", flops=1e10, bytes_moved=0)
        with machine.use_stream(b):
            second = machine.launch_kernel(machine.gpu, "kb", flops=1e10, bytes_moved=0)
        # Both start before the other ends: they run concurrently.
        assert second.start_ms < first.end_ms
        assert first.start_ms < second.end_ms
        # Union busy time over the kernels' window is shorter than the
        # serialized sum (the window excludes the context-init warm-up).
        window_lo = min(first.start_ms, second.start_ms)
        window_hi = max(first.end_ms, second.end_ms)
        union = machine.gpu.busy_ms(window_lo, window_hi)
        total = first.duration_ms + second.duration_ms
        assert union < total

    def test_async_cpu_stream_does_not_block_host(self, machine):
        worker = machine.stream(machine.cpu, "worker")
        before = machine.host_time_ms
        event = machine.host_work("prefetch", 10.0, stream=worker)
        assert machine.host_time_ms == pytest.approx(before)
        assert event.end_ms >= 10.0
        assert event.stream == "worker"

    def test_same_stream_still_serializes(self, machine):
        a = machine.stream(machine.gpu, "a")
        with machine.use_stream(a):
            first = machine.launch_kernel(machine.gpu, "k1", flops=1e9, bytes_moved=0)
            second = machine.launch_kernel(machine.gpu, "k2", flops=1e9, bytes_moved=0)
        assert second.start_ms >= first.end_ms


class TestStreamEvents:
    def test_wait_event_orders_cross_stream_work(self, machine):
        producer = machine.stream(machine.gpu, "producer")
        consumer = machine.stream(machine.gpu, "consumer")
        with machine.use_stream(producer):
            produced = machine.launch_kernel(machine.gpu, "produce", flops=1e10, bytes_moved=0)
        ready = machine.record_event(producer, name="produced")
        assert ready.ready_ms == pytest.approx(produced.end_ms)
        machine.wait_event(consumer, ready)
        with machine.use_stream(consumer):
            consumed = machine.launch_kernel(machine.gpu, "consume", flops=1e6, bytes_moved=0)
        assert consumed.start_ms >= produced.end_ms

    def test_wait_event_does_not_reorder_prior_work(self, machine):
        producer = machine.stream(machine.gpu, "producer")
        consumer = machine.stream(machine.gpu, "consumer")
        with machine.use_stream(consumer):
            early = machine.launch_kernel(machine.gpu, "early", flops=1e6, bytes_moved=0)
        with machine.use_stream(producer):
            slow = machine.launch_kernel(machine.gpu, "slow", flops=1e11, bytes_moved=0)
        machine.wait_event(consumer, machine.record_event(producer))
        # Work issued before the wait is unaffected.
        assert early.end_ms < slow.end_ms

    def test_event_on_idle_stream_is_immediately_ready(self, machine):
        idle = machine.stream(machine.gpu, "idle")
        machine.advance_host(5.0)
        event = machine.record_event(idle)
        assert event.ready_ms == pytest.approx(machine.host_time_ms)

    def test_event_synchronize_blocks_host(self, machine):
        stream = machine.stream(machine.gpu, "s")
        with machine.use_stream(stream):
            kernel = machine.launch_kernel(machine.gpu, "k", flops=1e10, bytes_moved=0)
        event = machine.record_event(stream)
        machine.event_synchronize(event)
        assert machine.host_time_ms == pytest.approx(kernel.end_ms)


class TestStreamSynchronize:
    def test_stream_sync_joins_only_that_stream(self, machine):
        fast = machine.stream(machine.gpu, "fast")
        slow = machine.stream(machine.gpu, "slow")
        with machine.use_stream(slow):
            slow_kernel = machine.launch_kernel(machine.gpu, "slow", flops=1e11, bytes_moved=0)
        with machine.use_stream(fast):
            fast_kernel = machine.launch_kernel(machine.gpu, "fast", flops=1e6, bytes_moved=0)
        machine.stream_synchronize(fast)
        assert machine.host_time_ms >= fast_kernel.end_ms
        assert machine.host_time_ms < slow_kernel.end_ms
        machine.synchronize()
        assert machine.host_time_ms == pytest.approx(slow_kernel.end_ms)


class TestSeedEquivalence:
    """Default-stream-only execution must match the seed's serialized engine."""

    WORKLOAD = (
        ("host", "preprocess", 2.0),
        ("gpu", "gemm1", 1e9),
        ("h2d", "upload", 4_000_000),
        ("gpu", "gemm2", 5e8),
        ("cpu", "postprocess", 1e7),
        ("sync", "", 0),
    )

    @staticmethod
    def _run(machine, explicit_default_streams: bool) -> list:
        """Issue the workload, optionally through explicit default-stream APIs."""
        import contextlib

        for kind, name, amount in TestSeedEquivalence.WORKLOAD:
            context = (
                machine.use_stream(machine.default_stream(machine.gpu))
                if explicit_default_streams
                else contextlib.nullcontext()
            )
            with context:
                if kind == "host":
                    machine.host_work(name, amount)
                elif kind == "cpu":
                    machine.launch_kernel(machine.cpu, name, flops=amount, bytes_moved=0)
                elif kind == "gpu":
                    machine.launch_kernel(machine.gpu, name, flops=amount, bytes_moved=0)
                elif kind == "h2d":
                    machine.transfer(machine.cpu, machine.gpu, int(amount), name=name)
                elif kind == "sync":
                    machine.synchronize()
        return [(e.kind, e.name, e.start_ms, e.end_ms) for e in machine.events]

    def test_explicit_default_stream_is_identical(self):
        implicit = Machine.cpu_gpu()
        implicit.initialize_gpu(model_bytes=0)
        explicit = Machine.cpu_gpu()
        explicit.initialize_gpu(model_bytes=0)
        assert self._run(implicit, False) == self._run(explicit, True)

    def test_seed_serialized_timings(self):
        """Pin the exact seed-era scheduling math for a mixed workload."""
        machine = Machine.cpu_gpu()
        machine.initialize_gpu(model_bytes=0)
        t0 = machine.host_time_ms

        machine.host_work("preprocess", 2.0)
        assert machine.host_time_ms == pytest.approx(t0 + 2.0)

        gpu = machine.gpu.spec
        kernel = machine.launch_kernel(machine.gpu, "gemm", flops=1e9, bytes_moved=0)
        launch_ms = gpu.host_overhead_us * 1e-3
        assert machine.host_time_ms == pytest.approx(t0 + 2.0 + launch_ms)
        body_ms = 1e9 / (gpu.effective_gflops(1e9) * 1e6)
        assert kernel.duration_ms == pytest.approx(gpu.launch_overhead_us * 1e-3 + body_ms)
        # Queued behind the host cursor on the (empty) default GPU queue.
        assert kernel.start_ms == pytest.approx(machine.host_time_ms)

        # Blocking transfer: waits for the producing GPU queue, occupies the
        # link for latency + bytes/bandwidth, and blocks the host.
        copy = machine.transfer(machine.gpu, machine.cpu, 2_000_000)
        assert copy.start_ms == pytest.approx(kernel.end_ms)
        expected_copy_ms = machine.link.spec.latency_us * 1e-3 + 2_000_000 / (
            machine.link.spec.bandwidth_gbps * 1e6
        )
        assert copy.duration_ms == pytest.approx(expected_copy_ms)
        assert machine.host_time_ms == pytest.approx(copy.end_ms)

    def test_union_busy_reduces_to_plain_busy_for_one_timeline(self, machine):
        machine.launch_kernel(machine.gpu, "k", flops=1e9, bytes_moved=0)
        timeline = machine.gpu.default_stream.timeline
        assert union_busy_ms([timeline]) == pytest.approx(timeline.busy_ms())


class TestLinkStreamContext:
    def test_use_stream_routes_transfers_onto_named_link_stream(self, machine):
        copies = machine.link.stream("mycopies")
        with machine.use_stream(copies):
            event = machine.transfer(machine.cpu, machine.gpu, 1000)
        assert event.stream == "mycopies"
        assert copies.busy_ms() > 0

    def test_current_stream_resolves_link_by_name(self, machine):
        assert machine.current_stream(machine.link.name) is machine.link.default_stream

    def test_utilization_report_caps_at_one_for_overlapped_kernels(self, machine):
        from repro.core import Profiler, utilization_report

        a = machine.stream(machine.gpu, "a")
        b = machine.stream(machine.gpu, "b")
        profiler = Profiler(machine)
        with machine.activate():
            with profiler.capture("w"):
                with machine.use_stream(a):
                    machine.launch_kernel(machine.gpu, "ka", flops=1e10, bytes_moved=0)
                with machine.use_stream(b):
                    machine.launch_kernel(machine.gpu, "kb", flops=1e10, bytes_moved=0)
        report = utilization_report(profiler.last_profile, "gpu")
        assert report.peak <= 1.0 + 1e-9
        assert report.average <= 1.0 + 1e-9
