"""Property-based invariants of the stream scheduler (seeded, stdlib-only).

Random programs -- kernels, host work, transfers, stream events, syncs,
allocations -- are issued against random machine topologies (1-4 GPUs, with
and without peer links).  Whatever the program, the simulator must uphold:

* every stream's timeline holds non-overlapping, time-ordered intervals of
  non-negative duration;
* the host cursor never moves backwards;
* memory pools never go negative, and alloc/free round-trips balance;
* ``synchronize`` really drains everything: afterwards no stream on any
  device or link is busy past the cursor;
* every logged event ends at or after it starts, inside a stream the
  machine actually owns.

Each seed is its own test case, so a failure names the exact seed to replay.
"""

import random

import pytest

from repro.hw import MACHINE_SPECS, Machine
from repro.hw.spec import machine_spec

SEEDS = list(range(12))

TOPOLOGIES = [
    "1xA6000",
    "1xA100",
    "2xA100-pcie",
    "2xA100-nvlink",
    "4xA100-pcie",
    "4xA100-nvlink",
]


def random_program(machine, rng, num_ops=60):
    """Issue a random but *valid* stream program; returns live alloc ids."""
    devices = list(machine.devices)
    stream_names = ["default", "s1", "s2"]
    recorded = []
    live_allocs = []
    host_before = machine.host_time_ms
    for _ in range(num_ops):
        op = rng.choice(
            ["kernel", "host", "transfer", "record", "wait", "sync",
             "stream_sync", "alloc", "free", "advance"]
        )
        if op == "kernel":
            device = rng.choice(devices)
            stream = device.stream(rng.choice(stream_names))
            machine.launch_kernel(
                device,
                f"k{rng.randrange(1000)}",
                flops=rng.uniform(0, 5e7),
                bytes_moved=rng.uniform(0, 1e6),
                stream=stream,
            )
        elif op == "host":
            stream = machine.cpu.stream(rng.choice(stream_names))
            machine.host_work("hw", rng.uniform(0, 2.0), stream=stream)
        elif op == "transfer" and machine.has_gpu:
            src, dst = rng.sample([machine.cpu] + list(machine.gpus), 2)
            machine.transfer(
                src, dst, rng.randrange(0, 1_000_000),
                non_blocking=rng.random() < 0.5,
            )
        elif op == "record":
            device = rng.choice(devices)
            stream = device.stream(rng.choice(stream_names))
            recorded.append(machine.record_event(stream))
        elif op == "wait" and recorded:
            device = rng.choice(devices)
            stream = device.stream(rng.choice(stream_names))
            machine.wait_event(stream, rng.choice(recorded))
        elif op == "sync":
            machine.synchronize()
        elif op == "stream_sync":
            device = rng.choice(devices)
            machine.stream_synchronize(device.stream(rng.choice(stream_names)))
        elif op == "alloc":
            device = rng.choice(devices)
            live_allocs.append((device, machine.alloc(device, rng.randrange(0, 10_000_000))))
        elif op == "free" and live_allocs:
            device, alloc_id = live_allocs.pop(rng.randrange(len(live_allocs)))
            machine.free(device, alloc_id)
        elif op == "advance":
            machine.advance_host(rng.uniform(0, 1.0))
        # The one global invariant checked after *every* operation:
        assert machine.host_time_ms >= host_before, "host cursor moved backwards"
        host_before = machine.host_time_ms
        for device in machine.devices:
            assert device.memory.current_bytes >= 0, "memory pool went negative"
    return live_allocs


def assert_stream_invariants(machine):
    """No stream interval overlaps, runs backwards, or precedes its queue."""
    resources = list(machine.devices) + list(machine.links)
    for resource in resources:
        for stream in resource.streams:
            previous_end = None
            for interval in stream.timeline:
                assert interval.duration_ms >= 0, (
                    f"negative duration on {resource.name}:{stream.name}"
                )
                if previous_end is not None:
                    assert interval.start_ms >= previous_end - 1e-12, (
                        f"overlapping intervals on {resource.name}:{stream.name}"
                    )
                previous_end = interval.end_ms


@pytest.mark.parametrize("seed", SEEDS)
def test_random_program_upholds_scheduler_invariants(seed):
    rng = random.Random(seed)
    machine = Machine.from_spec(rng.choice(TOPOLOGIES))
    live = random_program(machine, rng)
    assert_stream_invariants(machine)
    # Synchronize must drain every stream on every device and link.
    machine.synchronize()
    now = machine.host_time_ms
    for device in machine.devices:
        assert device.free_at <= now + 1e-9
    for link in machine.links:
        assert link.free_at <= now + 1e-9
    # Event log sanity: kinds valid (enforced at construction), ends >= starts.
    for event in machine.events:
        assert event.end_ms >= event.start_ms
    # Freeing everything still live balances the pools back to zero.
    for device, alloc_id in live:
        machine.free(device, alloc_id)
    for device in machine.devices:
        assert device.memory.current_bytes == 0


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_random_program_is_deterministic_under_seed(seed):
    def trace(s):
        rng = random.Random(s)
        machine = Machine.from_spec(rng.choice(TOPOLOGIES))
        random_program(machine, rng)
        return [
            (e.kind, e.name, e.resource, e.start_ms, e.end_ms, e.stream)
            for e in machine.events
        ]

    assert trace(seed) == trace(seed)


def test_memory_pool_rejects_double_free():
    machine = Machine.cpu_gpu()
    alloc_id = machine.alloc(machine.gpu, 1000)
    machine.free(machine.gpu, alloc_id)
    with pytest.raises(KeyError):
        machine.free(machine.gpu, alloc_id)


def test_all_machine_spec_presets_build_and_schedule():
    for name in MACHINE_SPECS:
        machine = Machine.from_spec(name)
        spec = machine_spec(name)
        assert machine.num_gpus == spec.num_gpus
        machine.host_work("tick", 1.0)
        if machine.has_gpu:
            machine.launch_kernel(machine.gpus[-1], "probe", 1e6, 1e4)
        machine.synchronize()
        assert_stream_invariants(machine)
