"""Backend equivalence: the shape backend must reproduce numeric timelines.

The shape execution backend (``Machine(backend="shape")``) propagates only
shapes/dtypes/device placement through the tensor layer while charging every
kernel, transfer, cache probe and allocation exactly as the numeric backend
does.  These tests pin the contract that makes the backend usable at all:
for the serving, scale-out and cache workloads, the *entire simulated
timeline* -- the ordered event sequence, per-device busy totals, latency
percentiles and cache hit/miss counters -- is equal between backends.
"""

import numpy as np
import pytest

from repro.cache import make_model_cache
from repro.datasets import load as load_dataset
from repro.experiments import cache_ablation, scaling, serving
from repro.graph.partition import make_partition
from repro.hw.machine import Machine
from repro.models.tgat import TGAT, TGATConfig
from repro.serve import (
    InferenceServer,
    ScaleOutServer,
    ShardedModel,
    build_replicas,
    generate_requests,
    make_arrival_process,
    make_policy,
    make_router,
)
from repro.tensor import Tensor, ops
from repro.tensor.meta import is_placeholder

BACKENDS = ("numeric", "shape")


def _signature(machine):
    """The full ordered event stream, reduced to comparable tuples."""
    return [
        (e.kind, e.name, e.resource, e.stream, e.start_ms, e.end_ms, e.flops, e.bytes)
        for e in machine.events
    ]


def _busy_by_device(machine):
    return {device.name: device.busy_ms() for device in machine.devices}


def _percentiles(report):
    if not report.completed:
        return None
    total = report.total_latency()
    return (total.p50_ms, total.p95_ms, total.p99_ms)


def _serve(backend, *, overlap=True, cached=False, placement="single"):
    """One tiny serving run on the given backend; returns (machine, report)."""
    dataset = load_dataset("wikipedia", scale="tiny")
    config = TGATConfig(num_neighbors=10, batch_size=64, seed=0)
    if placement == "single":
        machine = Machine.cpu_gpu(backend=backend)
        with machine.activate():
            models = [TGAT(machine, dataset, config)]
    else:
        machine = Machine.from_spec("2xA100-pcie", backend=backend)
        with machine.activate():
            models = build_replicas(
                machine, lambda: TGAT(machine, dataset, config), machine.gpus[:2]
            )
    if cached:
        span_start, span_end = dataset.stream.time_span
        for model in models:
            make_model_cache(
                model,
                policy="lru",
                capacity_mb=8.0,
                staleness_ms=max((span_end - span_start) * 2.0, 1.0),
            )
    arrivals = make_arrival_process("poisson", 400.0, seed=0)
    requests = generate_requests(
        dataset.stream, arrivals, duration_ms=60.0, events_per_request=1, slo_ms=50.0
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    label = f"eq-{placement}"
    if placement == "replicate":
        server = ScaleOutServer(models, policy, make_router("round-robin", len(models)))
        report = server.serve(requests, label=label, arrival_name="poisson")
    elif placement == "shard":
        partition = make_partition("degree", dataset.stream, len(models), seed=0)
        server = InferenceServer(ShardedModel(models, partition), policy, overlap=False)
        report = server.serve(requests, label=label, arrival_name="poisson")
    else:
        server = InferenceServer(models[0], policy, overlap=overlap)
        if cached:
            server.serve(requests, label=f"{label}-warm", arrival_name="poisson")
        report = server.serve(
            requests, label=label, arrival_name="poisson", warm_up=not cached
        )
    return machine, report


def _assert_equivalent(numeric, shape, *, check_cache=False):
    numeric_machine, numeric_report = numeric
    shape_machine, shape_report = shape
    assert shape_machine.host_time_ms == numeric_machine.host_time_ms
    assert shape_machine.event_count == numeric_machine.event_count
    assert _signature(shape_machine) == _signature(numeric_machine)
    assert _busy_by_device(shape_machine) == _busy_by_device(numeric_machine)
    assert shape_report.completed == numeric_report.completed
    assert numeric_report.completed > 0
    assert _percentiles(shape_report) == _percentiles(numeric_report)
    if check_cache:
        numeric_cache = numeric_report.cache or {}
        shape_cache = shape_report.cache or {}
        for key in ("lookups", "hits", "misses", "inserts", "evictions",
                    "stale_rejects", "invalidations"):
            assert shape_cache.get(key) == numeric_cache.get(key)
        assert numeric_cache.get("hits", 0) > 0


def test_single_overlap_serving_timeline_identical():
    _assert_equivalent(_serve("numeric"), _serve("shape"))


def test_blocking_serving_timeline_identical():
    _assert_equivalent(
        _serve("numeric", overlap=False), _serve("shape", overlap=False)
    )


def test_cached_serving_identical_including_hit_miss_stream():
    _assert_equivalent(
        _serve("numeric", cached=True),
        _serve("shape", cached=True),
        check_cache=True,
    )


def test_replicated_scaleout_identical():
    _assert_equivalent(
        _serve("numeric", placement="replicate"),
        _serve("shape", placement="replicate"),
    )


def test_sharded_scaleout_identical():
    _assert_equivalent(
        _serve("numeric", placement="shard"),
        _serve("shape", placement="shard"),
    )


# -- experiment-level equivalence (reduced default configs, tiny scale) ------


def test_serving_experiment_rows_identical():
    rows = {}
    for backend in BACKENDS:
        result = serving.run(
            scale="tiny",
            policies=("fifo", "slo"),
            utilizations=(1.2,),
            duration_ms=80.0,
            backend=backend,
        )
        assert result.rows, backend
        rows[backend] = result.rows
    assert rows["shape"] == rows["numeric"]


def test_scaling_experiment_rows_identical():
    rows = {}
    for backend in BACKENDS:
        result = scaling.run(
            scale="tiny",
            configs=(("1xA100", 1, "replicate"), ("2xA100-pcie", 2, "shard")),
            utilizations=(0.8,),
            duration_ms=80.0,
            backend=backend,
        )
        assert result.rows, backend
        rows[backend] = result.rows
    assert rows["shape"] == rows["numeric"]


def test_cache_ablation_experiment_rows_identical():
    rows = {}
    for backend in BACKENDS:
        result = cache_ablation.run(
            scale="tiny",
            policies=("lru",),
            capacities_mb=(8.0,),
            staleness_fractions=(0.0, 0.5),
            duration_ms=60.0,
            backend=backend,
        )
        assert result.rows, backend
        rows[backend] = result.rows
    # The warm nonzero-staleness cell must actually have served hits, or the
    # equality above proves nothing about the cache path.
    warmed = [row for row in rows["numeric"] if row.get("hit_rate")]
    assert warmed and warmed[0]["hit_rate"] > 0
    assert rows["shape"] == rows["numeric"]


# -- backend selection plumbing ----------------------------------------------


def test_machine_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown execution backend"):
        Machine.cpu_gpu(backend="symbolic")


def test_shape_mode_outputs_are_placeholders_and_numeric_are_dense():
    for backend, expect_placeholder in (("numeric", False), ("shape", True)):
        machine = Machine.cpu_gpu(backend=backend)
        with machine.activate():
            a = Tensor.zeros((4, 8), machine.gpus[0])
            b = Tensor.zeros((8, 3), machine.gpus[0])
            out = ops.matmul(a, b)
        assert out.data.shape == (4, 3)
        assert is_placeholder(out.data) == expect_placeholder
        assert out.data.dtype == np.float32
