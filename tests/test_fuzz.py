"""The fuzz harness's own test suite: bounded campaigns, planted faults,
shrinker behaviour, reproducer round-trips, and the regression corpus.

The bounded campaign here IS the CI fuzz entry point: fixed seeds, every
invariant on, small enough to stay within the tier-1 budget.  Real findings
get fixed and their shrunken reproducers checked into ``tests/fuzz_corpus/``,
which the corpus test replays on every run.
"""

import glob
import json
import os
import subprocess
import sys

import pytest

from repro.fuzz import (
    FuzzConfig,
    INVARIANTS,
    check_case,
    draw_case,
    fuzz,
    load_reproducer,
    replay,
    reproducer_dict,
    resolve_checks,
    save_reproducer,
    shrink,
)
from repro.fuzz.program import InvariantViolation

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")


# -- bounded campaigns (the CI fuzz gate) ------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_bounded_campaign_holds_every_invariant(seed):
    report = fuzz(seed=seed, budget=12)
    assert report.ok, report.summary()
    assert report.cases_run == 12
    assert report.ops_executed > 0
    assert set(report.checks) == set(INVARIANTS)


def test_campaign_cases_are_deterministic():
    config_a, ops_a = draw_case(7, 3)
    config_b, ops_b = draw_case(7, 3)
    assert config_a.as_dict() == config_b.as_dict()
    assert ops_a == ops_b
    # Cases are independently seeded: a different case index, different draw.
    _, ops_c = draw_case(7, 4)
    assert ops_c != ops_a


# -- planted violations ------------------------------------------------------


def test_planted_rewind_is_caught_and_shrunk_to_a_tiny_reproducer():
    report = fuzz(seed=3, budget=5, fault_rate=0.3)
    assert not report.ok
    failure = report.failure
    assert failure.invariant == "monotone-clock"
    assert len(failure.reproducer["ops"]) <= 5
    # The reproducer is self-contained: replaying it trips the same invariant.
    with pytest.raises(InvariantViolation) as excinfo:
        replay(failure.reproducer)
    assert excinfo.value.invariant == "monotone-clock"


def test_planted_fault_shrinks_config_to_the_smallest_machine():
    report = fuzz(seed=3, budget=5, fault_rate=0.3)
    config = report.failure.reproducer["config"]
    # A clock rewind needs no cluster, cache or serving episode to reproduce.
    assert config["cluster"] is None
    assert config["cache"] is None
    assert config["serving"] is None


# -- the shrinker ------------------------------------------------------------


def _plain_config():
    return FuzzConfig(topology="1xA6000", backend="numeric")


def test_shrinker_drops_irrelevant_ops():
    config = _plain_config()
    ops = [
        {"op": "host", "node": 0, "stream": "default", "ms": 0.5},
        {"op": "kernel", "node": 0, "device": 1, "stream": "default",
         "flops": 1e6, "bytes": 1e4},
        {"op": "advance", "node": 0, "ms": 0.25},
        {"op": "rewind", "node": 0, "ms": 2.0},
        {"op": "host", "node": 0, "stream": "default", "ms": 0.5},
    ]
    with pytest.raises(InvariantViolation) as excinfo:
        check_case(config, ops, ["monotone-clock"])
    shrunk_config, shrunk_ops, final = shrink(
        config, ops, excinfo.value, ["monotone-clock"]
    )
    assert final.invariant == "monotone-clock"
    assert shrunk_ops == [{"op": "rewind", "node": 0, "ms": 2.0}]
    assert shrunk_config.as_dict() == config.as_dict()


def test_shrinker_output_is_always_a_true_reproducer():
    config = _plain_config()
    ops = [
        {"op": "advance", "node": 0, "ms": 1.0},
        {"op": "rewind", "node": 0, "ms": 0.5},
    ]
    with pytest.raises(InvariantViolation) as excinfo:
        check_case(config, ops, ["monotone-clock"])
    _, shrunk_ops, final = shrink(config, ops, excinfo.value, ["monotone-clock"])
    assert final.invariant == "monotone-clock"
    # Every candidate is judged by re-running the full check, so whatever
    # survives shrinking must itself still trip the invariant.
    with pytest.raises(InvariantViolation):
        check_case(config, shrunk_ops, ["monotone-clock"])


# -- reproducer files --------------------------------------------------------


def test_reproducer_round_trip(tmp_path):
    config = _plain_config()
    ops = [{"op": "rewind", "node": 0, "ms": 1.5}]
    violation = InvariantViolation("monotone-clock", "cursor moved backwards")
    document = reproducer_dict(config, ops, violation, seed="9:2")
    path = tmp_path / "repro.json"
    save_reproducer(str(path), document)
    loaded = load_reproducer(str(path))
    assert loaded == json.loads(json.dumps(document))
    assert loaded["invariant"] == "monotone-clock"
    assert loaded["seed"] == "9:2"
    with pytest.raises(InvariantViolation):
        replay(loaded)


def test_resolve_checks_rejects_unknown_invariants():
    with pytest.raises(KeyError):
        resolve_checks(["not-an-invariant"])
    assert resolve_checks(None) == set(INVARIANTS)
    assert resolve_checks(["all"]) == set(INVARIANTS)
    assert resolve_checks(["monotone-clock"]) == {"monotone-clock"}


# -- the regression corpus ---------------------------------------------------


def _corpus_files():
    return sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_not_empty():
    assert _corpus_files(), "the regression corpus lost its reproducers"


@pytest.mark.parametrize(
    "path", _corpus_files(), ids=[os.path.basename(p) for p in _corpus_files()]
)
def test_corpus_reproducer_replays_clean(path):
    """Every checked-in finding stays fixed: replay must not raise."""
    reproducer = load_reproducer(path)
    assert reproducer.get("version") == 1
    assert reproducer.get("invariant") in set(INVARIANTS) | {"crash"}
    replay(reproducer)


# -- the CLI entry point -----------------------------------------------------


def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )},
    )


def test_cli_fuzz_clean_campaign_exits_zero():
    proc = _run_cli("fuzz", "--seed", "0", "--budget", "4")
    assert proc.returncode == 0, proc.stderr
    assert "all invariants held" in proc.stdout


def test_cli_fuzz_failure_writes_reproducer_and_exits_one(tmp_path):
    out = tmp_path / "repro.json"
    proc = _run_cli(
        "fuzz", "--seed", "3", "--budget", "5",
        "--fault-rate", "0.3", "--out", str(out),
    )
    assert proc.returncode == 1
    assert "FAILED" in proc.stdout
    reproducer = load_reproducer(str(out))
    assert reproducer["invariant"] == "monotone-clock"
    assert len(reproducer["ops"]) <= 5
    # And the replay path round-trips through the CLI too: the fault is a
    # deliberate contract break, so the reproducer must still fail.
    replayed = _run_cli("fuzz", "--replay", str(out))
    assert replayed.returncode == 1
    assert "still fails" in replayed.stderr


def test_cli_fuzz_replay_of_fixed_corpus_exits_zero():
    proc = _run_cli(
        "fuzz", "--replay",
        os.path.join(CORPUS_DIR, "nic_barrier_drain.json"),
    )
    assert proc.returncode == 0, proc.stderr
    assert "replays clean" in proc.stdout


def test_cli_fuzz_rejects_unknown_invariant():
    proc = _run_cli("fuzz", "--check", "bogus")
    assert proc.returncode == 2
