"""Property test: random operator programs are backend-invariant.

For seeded random programs of tensor operators (elementwise chains, matmuls,
reductions, concats, gathers, cross-device transfers, synchronisations) over
randomly drawn machine topologies, the simulated timeline must be identical

* between the ``numeric`` and ``shape`` execution backends, and
* with event recording on or off (``record_events`` only controls whether
  the event *log* is kept; scheduling must not change).

The program is generated as pure data first -- every RNG draw happens before
any machine exists -- so all four (backend, record_events) executions replay
the exact same operator sequence.
"""

import numpy as np
import pytest

from repro.hw.machine import Machine
from repro.tensor import Tensor, ops

SPECS = ("1xA100", "2xA100-pcie", "2xA100-nvlink", "4xA100-nvlink")


def _generate_program(seed, steps=40):
    """A random operator program as plain data (no machine, no tensors).

    Returns ``(spec_name, base_shapes, step_descriptors)``.  Device indices
    are resolved against the machine's device list at execution time.
    """
    rng = np.random.default_rng(seed)
    spec = SPECS[int(rng.integers(len(SPECS)))]
    num_devices = 1 + int(spec[0])  # "NxA100..." -> cpu + N gpus
    base_shapes = [
        (int(rng.integers(2, 24)), int(rng.integers(2, 24)))
        for _ in range(4)
    ]
    base_devices = [int(rng.integers(num_devices)) for _ in base_shapes]
    program = []
    for _ in range(steps):
        op = rng.choice(
            ["ew", "matmul", "reduce", "concat", "gather", "to", "sync"],
            p=[0.3, 0.2, 0.12, 0.08, 0.1, 0.15, 0.05],
        )
        if op == "ew":
            program.append(("ew", int(rng.integers(4)), float(rng.normal())))
        elif op == "matmul":
            program.append(("matmul", int(rng.integers(4)), int(rng.integers(2, 16))))
        elif op == "reduce":
            program.append(("reduce", int(rng.integers(4)), bool(rng.integers(2))))
        elif op == "concat":
            program.append(("concat", int(rng.integers(4))))
        elif op == "gather":
            rows = int(rng.integers(1, 8))
            program.append(("gather", int(rng.integers(4)), rows, int(rng.integers(1 << 30))))
        elif op == "to":
            program.append(("to", int(rng.integers(4)), int(rng.integers(num_devices))))
        else:
            program.append(("sync",))
    return spec, list(zip(base_shapes, base_devices)), program


def _execute(spec, bases, program, backend, record_events):
    """Replay one generated program; returns the machine it ran on."""
    machine = Machine.from_spec(spec, record_events=record_events, backend=backend)
    devices = [machine.cpu, *machine.gpus]
    with machine.activate():
        pool = [
            Tensor.zeros(shape, devices[device_index])
            for shape, device_index in bases
        ]
        for step in program:
            kind = step[0]
            slot = step[1] if len(step) > 1 else 0
            tensor = pool[slot]
            if kind == "ew":
                result = ops.relu(ops.add(tensor, step[2]))
            elif kind == "matmul":
                weight = Tensor.zeros((tensor.shape[-1], step[2]), tensor.device)
                result = ops.matmul(tensor, weight)
            elif kind == "reduce":
                reduced = ops.reduce_sum(tensor, axis=-1, keepdims=True)
                # Keep the pool 2-D: broadcast back up via elementwise add.
                result = ops.add(tensor, reduced) if step[2] else reduced
            elif kind == "concat":
                result = ops.concat([tensor, tensor], axis=0)
            elif kind == "gather":
                idx = np.arange(step[2], dtype=np.int64) % max(tensor.shape[0], 1)
                idx = np.roll(idx, step[3] % max(tensor.shape[0], 1))
                result = ops.gather_rows(tensor, idx)
            elif kind == "to":
                result = tensor.to(devices[step[2]])
            else:
                machine.synchronize()
                continue
            pool[slot] = result
        machine.synchronize(name="final")
    return machine


def _signature(machine):
    return [
        (e.kind, e.name, e.resource, e.stream, e.start_ms, e.end_ms, e.flops, e.bytes)
        for e in machine.events
    ]


def _busy_by_device(machine):
    return {device.name: device.busy_ms() for device in machine.devices}


@pytest.mark.parametrize("seed", range(8))
def test_random_programs_are_backend_and_recording_invariant(seed):
    spec, bases, program = _generate_program(seed)
    reference = _execute(spec, bases, program, "numeric", True)
    assert reference.event_count > 0
    runs = {
        (backend, record): _execute(spec, bases, program, backend, record)
        for backend in ("numeric", "shape")
        for record in (True, False)
        if (backend, record) != ("numeric", True)
    }
    reference_signature = _signature(reference)
    reference_busy = _busy_by_device(reference)
    for (backend, record), machine in runs.items():
        label = f"{backend}/record={record}"
        assert machine.host_time_ms == reference.host_time_ms, label
        assert machine.event_count == reference.event_count, label
        assert _busy_by_device(machine) == reference_busy, label
        if record:
            assert _signature(machine) == reference_signature, label
        else:
            assert len(machine.events) == 0, label
