"""Cluster hardware + serving: NIC routing, single-node identity, cold starts."""

import pytest

from repro.datasets import load
from repro.hw import (
    CLUSTER_SPECS,
    Cluster,
    ETHERNET_25G,
    INFINIBAND_HDR,
    Machine,
    available_cluster_specs,
    cluster_spec,
)
from repro.models.tgat import TGAT, TGATConfig
from repro.serve import (
    AutoscaleConfig,
    Autoscaler,
    ClusterServer,
    ScaleOutServer,
    build_cluster_replicas,
    build_replicas,
    generate_requests,
    make_arrival_process,
    make_policy,
    make_router,
    payload_nbytes,
)


def make_dataset():
    return load("wikipedia", scale="tiny")


def serve_cluster(dataset, cluster_name, rate=700.0, seed=0, router="round-robin",
                  backend="numeric", duration_ms=300.0, autoscale=None,
                  arrival="poisson", **arrival_kwargs):
    cluster = Cluster(cluster_name, backend=backend)
    config = TGATConfig(num_neighbors=10, batch_size=32, seed=seed)
    replicas, nodes = build_cluster_replicas(
        cluster, lambda machine: TGAT(machine, dataset, config)
    )
    arrivals = make_arrival_process(arrival, rate, seed=seed, **arrival_kwargs)
    requests = generate_requests(
        dataset.stream, arrivals, duration_ms=duration_ms,
        events_per_request=4, slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    autoscaler = Autoscaler(autoscale) if autoscale is not None else None
    server = ClusterServer(
        cluster, replicas, nodes, policy,
        make_router(router, len(replicas)), autoscaler=autoscaler,
    )
    report = server.serve(requests, label=cluster_name, arrival_name=arrival)
    return cluster, report


def all_events(cluster):
    events = []
    for node in cluster.nodes:
        events.extend(node.events)
    return events


class TestClusterSpecs:
    def test_registry_is_sorted_and_resolves(self):
        names = available_cluster_specs()
        assert names == sorted(names)
        for name in names:
            spec = cluster_spec(name)
            assert spec is CLUSTER_SPECS[name]
            assert spec.total_gpus == spec.num_nodes * spec.node.num_gpus

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError):
            cluster_spec("3n-doesnotexist")

    def test_nic_presets_are_ordered_as_documented(self):
        assert INFINIBAND_HDR.bandwidth_gbps > ETHERNET_25G.bandwidth_gbps
        assert INFINIBAND_HDR.latency_us < ETHERNET_25G.latency_us

    def test_cluster_builds_one_link_per_node_pair(self):
        cluster = Cluster("4n-1xA100-eth")
        assert cluster.num_nodes == 4
        assert len(cluster.nic_links) == 6  # C(4, 2)
        with pytest.raises(ValueError):
            cluster.nic_link(1, 1)
        single = Cluster("1n-2xA100")
        assert single.nic_links == ()


class TestNicRouting:
    def test_cross_node_transfer_routes_gpu_host_nic_host_gpu(self):
        cluster = Cluster("2n-1xA100-eth")
        src = cluster.nodes[0].gpus[0]
        dst = cluster.nodes[1].gpus[0]
        nbytes = 1 << 20
        arrival = cluster.transfer(0, src, 1, dst, nbytes, name="xfer")
        assert arrival > 0
        assert cluster.nic_bytes() == nbytes
        hops = [e for e in all_events(cluster) if e.kind == "transfer" and e.name == "xfer"]
        resources = [e.resource for e in hops]
        # d2h on the source host link, the NIC hop, h2d on the destination.
        assert len(hops) == 3
        assert any(r.startswith("eth") for r in resources)
        assert sum(1 for r in resources if r.startswith("pcie")) == 2
        # Hops serialize: each starts no earlier than the previous one lands.
        ordered = sorted(hops, key=lambda e: e.start_ms)
        for earlier, later in zip(ordered, ordered[1:]):
            assert later.start_ms >= earlier.end_ms - 1e-9

    def test_host_to_host_transfer_skips_the_gpu_hops(self):
        cluster = Cluster("2n-1xA100-eth")
        cluster.transfer(0, cluster.nodes[0].cpu, 1, cluster.nodes[1].cpu, 4096, name="h2h")
        hops = [e for e in all_events(cluster) if e.kind == "transfer" and e.name == "h2h"]
        assert len(hops) == 1
        assert hops[0].resource.startswith("eth")

    def test_intra_node_transfer_never_touches_a_nic(self):
        cluster = Cluster("2n-2xA100-eth")
        node = cluster.nodes[0]
        cluster.transfer(0, node.cpu, 0, node.gpus[0], 1 << 16, name="local")
        assert cluster.nic_bytes() == 0
        hops = [e for e in all_events(cluster) if e.kind == "transfer" and e.name == "local"]
        assert hops and all(not e.resource.startswith("eth") for e in hops)

    def test_infiniband_beats_ethernet_on_the_same_payload(self):
        nbytes = 8 << 20

        def arrival(name):
            cluster = Cluster(name)
            return cluster.transfer(
                0, cluster.nodes[0].cpu, 1, cluster.nodes[1].cpu, nbytes
            )

        assert arrival("2n-1xA100-ib") < arrival("2n-1xA100-eth")

    def test_receiving_node_clock_syncs_forward_to_the_arrival(self):
        cluster = Cluster("2n-1xA100-eth")
        arrival = cluster.transfer(
            0, cluster.nodes[0].gpus[0], 1, cluster.nodes[1].gpus[0], 1 << 20
        )
        # The h2d hop was issued by node 1's host at (or after) payload
        # arrival at its NIC, so its clock cannot lag the hop's start.
        assert cluster.nodes[1].host_time_ms > 0
        assert cluster.nodes[1].host_time_ms <= arrival + 1e-6
        assert cluster.time_ms == pytest.approx(
            max(n.host_time_ms for n in cluster.nodes)
        )
        assert cluster.host_time_ms == cluster.time_ms

    def test_rejects_negative_bytes_and_identical_endpoints(self):
        cluster = Cluster("2n-1xA100-eth")
        with pytest.raises(ValueError):
            cluster.transfer(0, cluster.nodes[0].cpu, 1, cluster.nodes[1].cpu, -1)
        with pytest.raises(ValueError):
            cluster.transfer(0, cluster.nodes[0].cpu, 0, cluster.nodes[0].cpu, 64)


class TestSingleNodeIdentity:
    def test_single_node_cluster_serving_is_event_identical_to_scaleout(self):
        """The acceptance bar: a 1-node cluster must replay the scale-out
        server's exact event stream -- same kinds, names, resources, times."""
        dataset = make_dataset()
        seed = 0
        config = TGATConfig(num_neighbors=10, batch_size=32, seed=seed)

        def requests_for(stream):
            arrivals = make_arrival_process("poisson", 700.0, seed=seed)
            return generate_requests(
                stream, arrivals, duration_ms=300.0,
                events_per_request=4, slo_ms=50.0,
            )

        cluster = Cluster("1n-2xA100")
        replicas, nodes = build_cluster_replicas(
            cluster, lambda machine: TGAT(machine, dataset, config)
        )
        cluster_server = ClusterServer(
            cluster, replicas, nodes,
            make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0),
            make_router("round-robin", len(replicas)),
        )
        cluster_report = cluster_server.serve(requests_for(dataset.stream))

        machine = Machine.from_spec("2xA100-pcie")
        with machine.activate():
            flat = build_replicas(machine, lambda: TGAT(machine, dataset, config))
        scaleout_server = ScaleOutServer(
            flat,
            make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0),
            make_router("round-robin", len(flat)),
        )
        scaleout_report = scaleout_server.serve(requests_for(dataset.stream))

        def trace(m):
            return [
                (e.kind, e.name, e.resource, e.start_ms, e.end_ms, e.bytes)
                for e in m.events
            ]

        assert trace(cluster.nodes[0]) == trace(machine)
        assert cluster.nic_bytes() == 0
        assert cluster_report.completed == scaleout_report.completed
        assert cluster_report.total_latency().p99_ms == pytest.approx(
            scaleout_report.total_latency().p99_ms
        )


class TestMultiNodeServing:
    def test_two_node_serving_completes_and_spreads_load(self):
        dataset = make_dataset()
        cluster, report = serve_cluster(dataset, "2n-1xA100-eth")
        assert report.completed == report.offered > 0
        spread = report.requests_per_replica()
        assert set(spread) == {0, 1}
        assert min(spread.values()) > 0
        assert cluster.nic_bytes() > 0  # replica 1's payloads crossed the NIC

    def test_report_carries_the_cluster_block_and_remote_gpu_keys(self):
        dataset = make_dataset()
        cluster, report = serve_cluster(dataset, "2n-1xA100-eth")
        nic_busy = report.cluster.pop("nic_busy")
        assert report.cluster == {
            "spec": "2n-1xA100-eth",
            "num_nodes": 2,
            "nic": "eth-25g",
            "nic_bytes": cluster.nic_bytes(),
        }
        # Per-link NIC busy fractions, one per node pair, within [0, 1] and
        # non-zero: replica 1's payloads crossed the 0-1 link.
        assert set(nic_busy) == {"eth-25g:0-1"}
        assert 0 < nic_busy["eth-25g:0-1"] <= 1
        # Multi-node runs node-qualify every per-device key: node machines
        # share GPU names, so bare node-0 names would collide with remote ones.
        keys = set(report.per_device_utilization)
        assert "node0:a100-sxm" in keys
        assert "node1:a100-sxm" in keys
        assert all(v > 0 for v in report.per_device_utilization.values())

    def test_deterministic_under_fixed_seed(self):
        dataset = make_dataset()
        _, a = serve_cluster(dataset, "2n-1xA100-eth", seed=3)
        _, b = serve_cluster(dataset, "2n-1xA100-eth", seed=3)
        assert a.summary() == b.summary()

    def test_shape_backend_matches_numeric_event_for_event(self):
        dataset = make_dataset()
        numeric_cluster, numeric = serve_cluster(dataset, "2n-1xA100-eth")
        shape_cluster, shape = serve_cluster(dataset, "2n-1xA100-eth", backend="shape")
        assert shape_cluster.event_count == numeric_cluster.event_count
        assert shape_cluster.time_ms == numeric_cluster.time_ms
        assert shape.total_latency().p99_ms == numeric.total_latency().p99_ms

    def test_payload_nbytes_counts_the_event_arrays(self):
        dataset = make_dataset()
        requests = generate_requests(
            dataset.stream, make_arrival_process("poisson", 500.0, seed=0),
            duration_ms=100.0, events_per_request=4,
        )
        nbytes = payload_nbytes(requests[0].payload)
        arrays = requests[0].payload
        expected = sum(
            getattr(arrays, name).nbytes
            for name in ("src", "dst", "timestamps", "edge_features")
            if getattr(arrays, name, None) is not None
        )
        assert nbytes == max(expected, 1) > 1

    def test_rejects_replica_on_the_wrong_node(self):
        dataset = make_dataset()
        cluster = Cluster("2n-1xA100-eth")
        config = TGATConfig(num_neighbors=10, batch_size=32, seed=0)
        replicas, nodes = build_cluster_replicas(
            cluster, lambda machine: TGAT(machine, dataset, config)
        )
        with pytest.raises(ValueError):
            ClusterServer(
                cluster, replicas, list(reversed(nodes)),
                make_policy("fifo"), make_router("round-robin", len(replicas)),
            )


class TestColdStart:
    def test_flash_crowd_scale_up_charges_weight_transfer(self):
        dataset = make_dataset()
        cluster, report = serve_cluster(
            dataset, "2n-2xA100-eth", rate=500.0, router="least-latency",
            arrival="flash-crowd", flash_at_ms=80.0, flash_duration_ms=120.0,
            flash_multiplier=6.0,
            autoscale=AutoscaleConfig(
                min_replicas=1, max_replicas=4, slo_ms=50.0,
                up_cooldown_ms=10.0, down_cooldown_ms=40.0,
            ),
        )
        stats = report.autoscale
        assert stats["scale_ups"] >= 1
        assert stats["cold_start_ms"] > 0
        weights = [
            e for e in all_events(cluster)
            if e.kind == "transfer" and e.name == "weight_transfer"
        ]
        assert weights
        # Every up event's ready time trails its initiation by the charge.
        for event in stats["events"]:
            if event["action"] == "up":
                assert event["ready_ms"] > event["t_ms"]
                assert event["cold_start_ms"] == pytest.approx(
                    event["ready_ms"] - event["t_ms"], abs=1e-3
                )
        # GPU-time integral sits between the floor and the full static fleet.
        assert stats["gpu_time_ms"] > report.duration_ms  # more than 1 replica
        assert stats["gpu_time_ms"] < 4 * report.duration_ms

    def test_remote_cold_start_costs_more_than_local(self):
        """Spinning up across the NIC pays the NIC hop a local spin-up skips."""
        dataset = make_dataset()
        config = TGATConfig(num_neighbors=10, batch_size=32, seed=0)
        cluster = Cluster("2n-2xA100-eth")
        replicas, nodes = build_cluster_replicas(
            cluster, lambda machine: TGAT(machine, dataset, config)
        )
        server = ClusterServer(
            cluster, replicas, nodes, make_policy("fifo"),
            make_router("round-robin", len(replicas)),
        )
        local = server._spin_up(1, 0.0)  # node 0, GPU 1
        remote = server._spin_up(2, 0.0)  # node 1, GPU 0
        assert remote > local > 0
