"""Profiler capture windows, FLOP deltas and per-stream statistics."""

import numpy as np
import pytest

from repro.core import Profiler, compute_breakdown
from repro.hw import KERNEL, Machine
from repro.tensor import Tensor, ops


@pytest.fixture
def machine():
    m = Machine.cpu_gpu()
    m.initialize_gpu(model_bytes=0)
    return m


class TestCaptureWindows:
    def test_capture_bounds_and_event_slice(self, machine):
        profiler = Profiler(machine)
        with machine.activate():
            machine.host_work("outside", 2.0)
            start = machine.host_time_ms
            with profiler.capture("window"):
                machine.host_work("inside", 3.0)
        profile = profiler.last_profile
        assert profile.start_ms == pytest.approx(start)
        assert profile.end_ms == pytest.approx(machine.host_time_ms)
        names = [e.name for e in profile.events]
        assert "inside" in names and "outside" not in names

    def test_capture_synchronizes_queued_gpu_work(self, machine):
        profiler = Profiler(machine)
        with machine.activate():
            with profiler.capture("gpu"):
                machine.launch_kernel(machine.gpu, "slow", flops=1e11, bytes_moved=0)
        profile = profiler.last_profile
        kernel = next(e for e in profile.events if e.kind == KERNEL)
        assert profile.end_ms >= kernel.end_ms

    def test_capture_without_synchronize(self, machine):
        profiler = Profiler(machine)
        with machine.activate():
            with profiler.capture("nosync", synchronize=False):
                machine.launch_kernel(machine.gpu, "slow", flops=1e11, bytes_moved=0)
        profile = profiler.last_profile
        kernel = next(e for e in profile.events if e.kind == KERNEL)
        assert profile.end_ms < kernel.end_ms

    def test_consecutive_windows_partition_flops(self, machine):
        profiler = Profiler(machine)
        with machine.activate():
            x = Tensor(np.ones((32, 32), dtype=np.float32), machine.gpu)
            with profiler.capture("first"):
                ops.matmul(x, x)
            with profiler.capture("second"):
                ops.matmul(x, x)
                ops.matmul(x, x)
        first, second = profiler.profiles
        expected = 2 * 32 * 32 * 32
        assert first.device("gpu").flops == pytest.approx(expected)
        assert second.device("gpu").flops == pytest.approx(2 * expected)

    def test_flop_deltas_match_window_events(self, machine):
        """The O(1) counter path must agree with summing the window's events."""
        profiler = Profiler(machine)
        with machine.activate():
            machine.launch_kernel(machine.gpu, "warm", flops=123.0, bytes_moved=0)
            with profiler.capture("w"):
                machine.launch_kernel(machine.gpu, "a", flops=10.0, bytes_moved=0)
                machine.launch_kernel(machine.cpu, "b", flops=4.0, bytes_moved=0)
        profile = profiler.last_profile
        for snapshot in profile.devices:
            from_events = sum(
                e.flops for e in profile.events
                if e.kind == KERNEL and e.resource == snapshot.name
            )
            assert snapshot.flops == pytest.approx(from_events)


class TestPerStreamStats:
    def test_default_mode_has_single_busy_stream(self, machine):
        profiler = Profiler(machine)
        with machine.activate():
            with profiler.capture("w"):
                machine.launch_kernel(machine.gpu, "k", flops=1e9, bytes_moved=0)
        gpu = profiler.last_profile.device("gpu")
        assert [s.name for s in gpu.streams] == ["default"]
        assert gpu.stream("default").busy_ms == pytest.approx(gpu.busy_ms)
        assert gpu.stream("default").kernel_count == 1

    def test_named_streams_split_busy_time(self, machine):
        side = machine.stream(machine.gpu, "side")
        profiler = Profiler(machine)
        with machine.activate():
            with profiler.capture("w"):
                machine.launch_kernel(machine.gpu, "k0", flops=1e9, bytes_moved=0)
                with machine.use_stream(side):
                    machine.launch_kernel(machine.gpu, "k1", flops=1e9, bytes_moved=0)
        profile = profiler.last_profile
        gpu = profile.device("gpu")
        assert gpu.stream("side").kernel_count == 1
        assert gpu.stream("default").kernel_count == 1
        assert profile.stream_busy_ms("gpu", "side") > 0
        # Union busy never exceeds the per-stream sum, and both streams ran.
        assert gpu.busy_ms <= sum(s.busy_ms for s in gpu.streams) + 1e-9
        assert len(profile.events_on_stream(machine.gpu.name, "side")) == 1

    def test_link_stream_snapshots(self, machine):
        profiler = Profiler(machine)
        with machine.activate():
            with profiler.capture("w"):
                machine.transfer(machine.cpu, machine.gpu, 1_000_000)
                machine.transfer(machine.cpu, machine.gpu, 500, non_blocking=True)
        profile = profiler.last_profile
        by_name = {s.name: s for s in profile.link_streams}
        assert by_name["default"].transfer_count == 1
        assert by_name["copy"].transfer_count == 1

    def test_stream_filtered_breakdown(self, machine):
        side = machine.stream(machine.gpu, "side")
        profiler = Profiler(machine)
        with machine.activate():
            with profiler.capture("w"):
                with machine.region("A"):
                    machine.launch_kernel(machine.gpu, "k0", flops=1e6, bytes_moved=0)
                with machine.region("B"), machine.use_stream(side):
                    machine.launch_kernel(machine.gpu, "k1", flops=1e6, bytes_moved=0)
        profile = profiler.last_profile
        side_only = compute_breakdown(profile, stream="side")
        assert side_only.labels() == ["B"]


class TestMemoryStats:
    def test_memory_timeline_tracks_allocs(self, machine):
        profiler = Profiler(machine)
        with machine.activate():
            with profiler.capture("w"):
                with machine.activate():
                    t = Tensor.zeros((100, 10), machine.gpu, name="buf")
                    t.free()
        profile = profiler.last_profile
        series = profile.memory_timeline("gpu")
        levels = [level for _, level in series]
        assert max(levels) >= 100 * 10 * 4
        assert levels[-1] == levels[0]
