"""DeviceResidentCache tests: staleness, pressure, invalidation, charging.

Includes the seeded property tests the cache subsystem is gated on:
* the store never serves an entry whose event-time age falls outside the
  strict ``[0, staleness)`` window, and
* the charged device memory (the store's own ledger *and* the simulated
  device pool's per-tag usage) never exceeds the configured capacity.
"""

import random

import pytest

from repro.cache import DeviceResidentCache, make_eviction_policy
from repro.hw import Machine
from repro.hw.events import ALLOC, FREE


def make_store(
    machine=None,
    kind="embedding",
    policy="lru",
    capacity=1000,
    staleness=100.0,
    weight_of=None,
):
    machine = machine if machine is not None else Machine.cpu_gpu()
    device = machine.gpu if kind in ("embedding", "memory") else machine.cpu
    store = DeviceResidentCache(
        machine,
        device,
        kind,
        make_eviction_policy(policy),
        capacity,
        staleness,
        weight_of=weight_of,
    )
    return (machine, store)


def test_rejects_bad_configuration():
    machine = Machine.cpu_gpu()
    with pytest.raises(ValueError, match="capacity"):
        DeviceResidentCache(
            machine, machine.gpu, "embedding", make_eviction_policy("lru"), 0, 1.0
        )
    with pytest.raises(ValueError, match="staleness"):
        DeviceResidentCache(
            machine, machine.gpu, "embedding", make_eviction_policy("lru"), 10, -1.0
        )


def test_staleness_window_is_strict():
    _, store = make_store(staleness=10.0)
    store.put(7, "row", event_ms=100.0, nbytes=10)
    store.flush_charges()
    assert store.probe(7, 100.0) == "row"  # age 0 is inside
    assert store.probe(7, 109.999) == "row"  # just inside
    assert store.probe(7, 110.0) is None  # age == bound: rejected + expired
    assert 7 not in store
    assert store.stats.stale_rejects == 1
    assert store.stats.stale_evictions == 1


def test_staleness_zero_never_serves():
    _, store = make_store(staleness=0.0)
    store.put(1, "row", event_ms=5.0, nbytes=4)
    assert store.probe(1, 5.0) is None
    assert store.stats.hits == 0
    assert store.stats.misses == 1


def test_entries_from_the_future_are_not_served_but_kept():
    _, store = make_store(staleness=50.0)
    store.put(1, "row", event_ms=100.0, nbytes=4)
    # A query before the entry's event time must not see it...
    assert store.probe(1, 90.0) is None
    # ...but the entry is not expired (it is still valid for later queries).
    assert store.probe(1, 120.0) == "row"


def test_eviction_under_forced_memory_pressure_lru():
    _, store = make_store(capacity=30, staleness=1e9)
    for key in (1, 2, 3):
        store.put(key, f"row{key}", event_ms=0.0, nbytes=10)
    store.probe(1, 0.0)  # 1 is now the most recently served
    assert store.put(4, "row4", event_ms=0.0, nbytes=10)
    assert 2 not in store  # LRU victim
    assert 1 in store and 3 in store and 4 in store
    assert store.stats.evictions == 1
    assert store.bytes_current == 30


def test_eviction_under_forced_memory_pressure_degree():
    degrees = {1: 100.0, 2: 1.0, 3: 50.0}
    _, store = make_store(
        policy="degree", capacity=30, staleness=1e9, weight_of=degrees.get
    )
    for key in (1, 2, 3):
        store.put(key, f"row{key}", event_ms=0.0, nbytes=10)
    store.put(4, "row4", event_ms=0.0, nbytes=10)
    assert 2 not in store  # smallest degree goes first
    assert 1 in store and 3 in store


def test_oversized_entries_are_rejected_outright():
    _, store = make_store(capacity=100, staleness=1e9)
    store.put(1, "keep", event_ms=0.0, nbytes=60)
    assert not store.put(2, "huge", event_ms=0.0, nbytes=101)
    assert 2 not in store
    assert 1 in store  # nothing was evicted for a hopeless insert
    assert store.stats.evictions == 0


def test_overwrite_replaces_without_double_counting():
    _, store = make_store(capacity=100, staleness=1e9)
    store.put(1, "old", event_ms=0.0, nbytes=40)
    store.put(1, "new", event_ms=5.0, nbytes=60)
    assert store.bytes_current == 60
    assert store.probe(1, 5.0) == "new"
    assert len(store) == 1


def test_invalidation_on_events_drops_touched_entries():
    _, store = make_store(staleness=1e9)
    for key in (1, 2, 3):
        store.put(key, key, event_ms=0.0, nbytes=8)
    dropped = store.invalidate([1, 3, 99])
    assert dropped == 2
    assert store.stats.invalidations == 2
    assert 1 not in store and 3 not in store and 2 in store
    assert store.bytes_current == 8


def test_residency_is_charged_to_the_device_memory_pool():
    machine, store = make_store(capacity=1000, staleness=1e9)
    gpu = machine.gpu
    with machine.activate():
        store.put(1, "a", event_ms=0.0, nbytes=100)
        store.put(2, "b", event_ms=0.0, nbytes=200)
        store.flush_charges()
        assert gpu.memory.usage_by_tag().get("cache:embedding") == 300
        store.invalidate([1])
        store.flush_charges()
        assert gpu.memory.usage_by_tag().get("cache:embedding") == 200
    kinds = [e.kind for e in machine.events]
    assert ALLOC in kinds and FREE in kinds


def test_lookups_and_updates_are_charged_on_the_machine_clock():
    machine, store = make_store(capacity=1000, staleness=1e9)
    with machine.activate():
        before = machine.host_time_ms
        store.put(1, "a", event_ms=0.0, nbytes=100)
        store.probe(1, 0.0)
        store.flush_charges("test")
        after = machine.host_time_ms
    assert after > before  # host admin work moved the cursor
    names = [e.name for e in machine.events]
    assert any(n.startswith("cache_embedding_admin") for n in names)
    assert any(n.startswith("cache_embedding_gather") for n in names)
    assert any(n.startswith("cache_embedding_insert") for n in names)


def test_flush_without_activity_charges_nothing():
    machine, store = make_store()
    with machine.activate():
        count = machine.event_count
        store.flush_charges()
        assert machine.event_count == count


@pytest.mark.parametrize("policy", ["lru", "lfu", "degree"])
def test_property_staleness_bound_and_capacity_never_violated(policy):
    """Seeded random op streams: the two cache safety invariants hold.

    (1) a probe only ever serves entries with age in [0, staleness);
    (2) the store's ledger and the device pool's cache-tag usage never
        exceed the configured capacity.
    """
    rng = random.Random(1234)
    machine = Machine.cpu_gpu()
    capacity = 500
    staleness = 25.0
    degrees = {key: float(rng.randrange(1, 200)) for key in range(40)}
    _, store = make_store(
        machine,
        policy=policy,
        capacity=capacity,
        staleness=staleness,
        weight_of=degrees.get,
    )
    gpu = machine.gpu
    clock = 0.0
    with machine.activate():
        for _ in range(1500):
            clock += rng.random() * 4.0
            key = rng.randrange(40)
            op = rng.random()
            if op < 0.45:
                age = store.entry_age_ms(key, clock)
                value = store.probe(key, clock)
                if value is not None:
                    assert age is not None and 0.0 <= age < staleness
            elif op < 0.85:
                store.put(key, key, event_ms=clock, nbytes=rng.randrange(1, 120))
            else:
                store.invalidate([key, rng.randrange(40)])
            assert 0 <= store.bytes_current <= capacity
            assert gpu.memory.usage_by_tag().get("cache:embedding", 0) <= capacity
            assert (
                gpu.memory.usage_by_tag().get("cache:embedding", 0)
                == store.bytes_current
            )
        store.flush_charges()
    stats = store.stats
    assert stats.hits + stats.misses == stats.lookups
    assert stats.hits > 0 and stats.evictions > 0  # the stream exercised both


def test_staleness_zero_bypasses_inserts_entirely():
    """Under a zero bound ``put`` admits nothing: no inserts, no occupancy."""
    machine, store = make_store(staleness=0.0)
    with machine.activate():
        events_before = machine.event_count
        for key in range(20):
            assert store.put(key, "row", event_ms=float(key), nbytes=16) is False
        assert store.put_many(list(range(20)), "row", [0.0] * 20, 16) == 0
        store.flush_charges("update")
    assert store.stats.inserts == 0
    assert store.stats.entries == 0
    assert store.stats.bytes_current == 0
    assert store.stats.bytes_peak == 0
    assert len(store) == 0
    # No allocation, copy kernel or admin work was charged for the bypass.
    assert machine.event_count == events_before
    assert machine.gpu.memory.usage_by_tag().get("cache:embedding", 0) == 0


def test_batched_probe_put_match_per_key_calls_exactly():
    """probe_many/put_many are charge- and stats-identical to per-key loops."""
    loop_machine, loop_store = make_store(staleness=30.0, capacity=600)
    batch_machine, batch_store = make_store(staleness=30.0, capacity=600)
    keys = [key % 17 for key in range(60)]
    times = [float(index) for index in range(60)]
    probe_times = [t + 5.0 for t in times]
    with loop_machine.activate():
        for key, event_ms in zip(keys, times):
            loop_store.put(key, key, event_ms, 24)
        loop_store.flush_charges("update")
        loop_values = [
            loop_store.probe(key, now) for key, now in zip(keys, probe_times)
        ]
        loop_store.flush_charges("lookup")
    with batch_machine.activate():
        batch_store.put_many(keys, None, times, 24)
        # put_many shares one value object; rewrite values per key so the
        # probe comparison below is meaningful.
        for key, event_ms in zip(keys, times):
            batch_store.put(key, key, event_ms, 24)
        batch_store.flush_charges("update")
        batch_values = batch_store.probe_many(keys, probe_times)
        batch_store.flush_charges("lookup")
    assert batch_values == loop_values
    loop_stats = loop_store.stats.as_dict()
    batch_stats = batch_store.stats.as_dict()
    # The batched store did one extra overwrite round (the value rewrite),
    # which doubles inserts but must not disturb the lookup-side counters.
    for key in ("lookups", "hits", "misses", "stale_rejects", "entries",
                "bytes_current", "hit_rate"):
        assert batch_stats[key] == loop_stats[key], key
    assert batch_stats["inserts"] == 2 * loop_stats["inserts"]


def test_put_many_evicts_under_pressure_like_put():
    """Eviction decisions inside put_many mirror sequential per-key puts."""
    loop_machine, loop_store = make_store(staleness=100.0, capacity=100)
    batch_machine, batch_store = make_store(staleness=100.0, capacity=100)
    keys = list(range(10))
    times = [float(index) for index in range(10)]
    with loop_machine.activate():
        for key, event_ms in zip(keys, times):
            loop_store.put(key, True, event_ms, 30)
        loop_store.flush_charges("update")
    with batch_machine.activate():
        assert batch_store.put_many(keys, True, times, 30) == 10
        batch_store.flush_charges("update")
    assert loop_store.stats.as_dict() == batch_store.stats.as_dict()
    assert loop_store.stats.evictions > 0
    assert sorted(key for key in keys if key in loop_store) == sorted(
        key for key in keys if key in batch_store
    )


# -- merged-stats peak semantics (PR 8 regression) ----------------------------------


def test_cache_stats_merge_takes_max_peak_and_keeps_the_sum():
    from repro.cache.store import CacheStats

    a = CacheStats(lookups=10, hits=4, misses=6, bytes_current=100, bytes_peak=300)
    b = CacheStats(lookups=5, hits=5, misses=0, bytes_current=50, bytes_peak=200)
    c = CacheStats(lookups=1, hits=0, misses=1, bytes_current=10, bytes_peak=400)
    merged = CacheStats()
    for part in (a, b, c):
        merged.merge(part)
    # Per-store peaks happen at different times: a sum of them is not a
    # peak of the merged store.  The max is; the sum survives separately.
    assert merged.bytes_peak == 400
    assert merged.peak_sum == 900
    assert merged.as_dict()["bytes_peak_sum"] == 900
    assert merged.lookups == 16
    assert merged.hits == 9
    assert merged.bytes_current == 160
    # Conservation holds through the merge.
    assert merged.hits + merged.misses == merged.lookups


def test_cache_stats_single_store_peak_sum_equals_peak():
    from repro.cache.store import CacheStats

    stats = CacheStats(bytes_peak=123)
    assert stats.peak_sum == 123
    assert stats.as_dict()["bytes_peak_sum"] == 123


def test_merge_cache_stats_reports_max_peak_across_replicas():
    from repro.cache import merge_cache_stats

    reports = [
        {"policy": "lru", "capacity_mb": 8.0, "staleness_ms": 5.0, "kinds": ["embedding"],
         "lookups": 10, "hits": 3, "misses": 7, "bytes_peak": 1000, "bytes_peak_sum": 1000},
        {"policy": "lru", "capacity_mb": 8.0, "staleness_ms": 5.0, "kinds": ["embedding"],
         "lookups": 20, "hits": 10, "misses": 10, "bytes_peak": 600, "bytes_peak_sum": 600},
    ]
    merged = merge_cache_stats(reports)
    assert merged["bytes_peak"] == 1000
    assert merged["bytes_peak_sum"] == 1600
    assert merged["lookups"] == 30
    assert merged["hits"] + merged["misses"] == merged["lookups"]
