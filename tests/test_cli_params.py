"""CLI parameter parsing and the serve subcommand surface."""

import pytest

from repro.cli import _parse_param, build_parser, main


# -- coercion -------------------------------------------------------------------


def test_parse_param_coerces_ints():
    assert _parse_param(["batch_size=256"]) == {"batch_size": 256}
    assert isinstance(_parse_param(["x=7"])["x"], int)


def test_parse_param_coerces_floats():
    overrides = _parse_param(["rate=2.5", "tiny=1e-3"])
    assert overrides["rate"] == pytest.approx(2.5)
    assert overrides["tiny"] == pytest.approx(1e-3)
    assert isinstance(overrides["rate"], float)


def test_parse_param_coerces_bools_case_insensitively():
    overrides = _parse_param(["a=true", "b=False", "c=TRUE"])
    assert overrides == {"a": True, "b": False, "c": True}


def test_parse_param_keeps_strings_and_empty_values():
    overrides = _parse_param(["name=wikipedia", "empty=", "tricky=1.2.3"])
    assert overrides == {"name": "wikipedia", "empty": "", "tricky": "1.2.3"}


def test_parse_param_later_duplicates_win():
    assert _parse_param(["k=1", "k=2"]) == {"k": 2}


def test_parse_param_rejects_malformed_overrides():
    with pytest.raises(ValueError, match="must be key=value"):
        _parse_param(["oops"])
    with pytest.raises(ValueError, match="must be key=value"):
        _parse_param(["=5"])


# -- argparse integration -----------------------------------------------------------


def test_malformed_param_exits_cleanly_with_usage(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["profile", "tgat", "--param", "oops"])
    assert excinfo.value.code == 2
    stderr = capsys.readouterr().err
    assert "usage:" in stderr
    assert "must be key=value" in stderr


def test_malformed_param_on_serve_exits_cleanly(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["serve", "tgat", "--param", "=broken"])
    assert excinfo.value.code == 2
    assert "must be key=value" in capsys.readouterr().err


def test_wellformed_params_parse_into_coerced_pairs():
    parser = build_parser()
    args = parser.parse_args(
        ["profile", "tgat", "--param", "num_neighbors=5", "--param", "uniform_sampling=false"]
    )
    assert _parse_param(args.param) == {"num_neighbors": 5, "uniform_sampling": False}


def test_serve_subcommand_defaults():
    parser = build_parser()
    args = parser.parse_args(["serve", "tgat"])
    assert args.command == "serve"
    assert args.arrival == "poisson"
    assert args.policy == "timeout"
    assert args.slo_ms == 50.0
    assert args.overlap is False
    assert args.seed == 0


# -- end-to-end CLI ------------------------------------------------------------------


def test_cli_serve_runs_end_to_end(capsys):
    code = main(
        ["serve", "tgat", "--scale", "tiny", "--rate", "300", "--duration", "100",
         "--policy", "slo", "--seed", "1", "--param", "num_neighbors=5"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "serving report" in out
    assert "p99" in out


def test_cli_serve_rejects_unservable_models(capsys):
    code = main(["serve", "jodie", "--scale", "tiny", "--rate", "100", "--duration", "50"])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


# -- scale-out serve flags -----------------------------------------------------------


def test_serve_scaleout_defaults():
    parser = build_parser()
    args = parser.parse_args(["serve", "tgat"])
    assert args.topology == "1xA6000"
    assert args.placement == "single"
    assert args.router == "round-robin"
    assert args.partitioner == "degree"
    assert args.gpus is None


def test_cli_serve_replicated_end_to_end(capsys):
    code = main(
        ["serve", "tgat", "--scale", "tiny", "--rate", "500", "--duration", "100",
         "--topology", "2xA100-pcie", "--placement", "replicate", "--router", "jsq",
         "--param", "num_neighbors=5"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "placement: replicate x2" in out
    assert "jsq" in out


def test_cli_serve_sharded_end_to_end(capsys):
    code = main(
        ["serve", "tgat", "--scale", "tiny", "--rate", "200", "--duration", "80",
         "--topology", "2xA100-nvlink", "--placement", "shard",
         "--param", "num_neighbors=5"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "placement: shard x2" in out


def test_cli_serve_rejects_too_many_gpus(capsys):
    code = main(
        ["serve", "tgat", "--scale", "tiny", "--topology", "2xA100-pcie",
         "--gpus", "3", "--placement", "replicate"]
    )
    assert code == 2
    assert "--gpus must be in [1, 2]" in capsys.readouterr().err


def test_cli_serve_rejects_overlap_with_scaleout_placement(capsys):
    code = main(
        ["serve", "tgat", "--scale", "tiny", "--topology", "2xA100-pcie",
         "--placement", "replicate", "--overlap"]
    )
    assert code == 2
    assert "overlap" in capsys.readouterr().err


def test_cli_serve_rejects_gpus_flag_on_single_placement(capsys):
    code = main(["serve", "tgat", "--scale", "tiny", "--topology", "4xA100-pcie", "--gpus", "4"])
    assert code == 2
    assert "--gpus only applies" in capsys.readouterr().err


def test_cli_serve_rejects_scaleout_on_cpu_only_topology(capsys):
    code = main(
        ["serve", "tgat", "--scale", "tiny", "--topology", "cpu-only",
         "--placement", "replicate"]
    )
    assert code == 2
    assert "needs a GPU topology" in capsys.readouterr().err
