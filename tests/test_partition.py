"""Partitioner coverage: balance bounds, determinism, edge-cut accounting."""

import numpy as np
import pytest

from repro.graph.events import EventStream
from repro.graph.partition import (
    GraphPartition,
    available_partitioners,
    degree_balanced_partition,
    hash_partition,
    make_partition,
    node_degrees,
)


def skewed_stream(num_events=2000, num_nodes=200, seed=0):
    """A power-law-ish interaction stream (hot nodes, like real datasets)."""
    rng = np.random.default_rng(seed)
    # Zipf-weighted endpoints so a few nodes carry most interactions.
    weights = 1.0 / np.arange(1, num_nodes + 1) ** 1.2
    weights /= weights.sum()
    src = rng.choice(num_nodes, size=num_events, p=weights)
    dst = rng.choice(num_nodes, size=num_events, p=weights)
    timestamps = np.sort(rng.uniform(0, 1000, size=num_events))
    return EventStream(src, dst, timestamps, num_nodes=num_nodes)


class TestHashPartition:
    def test_deterministic_under_fixed_seed(self):
        a = hash_partition(500, 4, seed=7)
        b = hash_partition(500, 4, seed=7)
        assert np.array_equal(a.assignment, b.assignment)

    def test_different_seeds_permute_assignment(self):
        a = hash_partition(500, 4, seed=0)
        b = hash_partition(500, 4, seed=1)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_node_counts_statistically_balanced(self):
        partition = hash_partition(4000, 4, seed=0)
        counts = partition.node_counts()
        assert counts.sum() == 4000
        # Uniform hash: each shard within 20% of the 1000-node mean.
        assert counts.min() > 800 and counts.max() < 1200

    def test_every_shard_in_range(self):
        partition = hash_partition(100, 3, seed=2)
        assert partition.assignment.min() >= 0
        assert partition.assignment.max() < 3

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            hash_partition(10, 0)
        with pytest.raises(ValueError):
            hash_partition(-1, 2)


class TestDegreeBalancedPartition:
    def test_deterministic_under_fixed_seed(self):
        stream = skewed_stream()
        a = degree_balanced_partition(stream, 4, seed=3)
        b = degree_balanced_partition(stream, 4, seed=3)
        assert np.array_equal(a.assignment, b.assignment)

    def test_lpt_balance_bound(self):
        """Greedy LPT: max shard load <= mean + one max-degree node."""
        stream = skewed_stream()
        for shards in (2, 3, 4):
            partition = degree_balanced_partition(stream, shards, seed=0)
            loads = partition.degree_loads(stream)
            degrees = node_degrees(stream, stream.num_nodes)
            assert loads.max() <= loads.mean() + degrees.max()

    def test_beats_hash_on_skewed_degree_balance(self):
        stream = skewed_stream()
        degree = degree_balanced_partition(stream, 4, seed=0)
        hashed = hash_partition(stream.num_nodes, 4, seed=0)
        assert degree.balance(stream) <= hashed.balance(stream)

    def test_covers_all_nodes(self):
        stream = skewed_stream(num_events=300, num_nodes=50)
        partition = degree_balanced_partition(stream, 2, seed=0)
        assert partition.num_nodes == 50


class TestPartitionViews:
    def test_edge_cut_fraction_bounds(self):
        stream = skewed_stream()
        partition = hash_partition(stream.num_nodes, 4, seed=0)
        cut = partition.edge_cut_fraction(stream)
        assert 0.0 <= cut <= 1.0
        single = hash_partition(stream.num_nodes, 1, seed=0)
        assert single.edge_cut_fraction(stream) == 0.0

    def test_split_events_partitions_every_event_once(self):
        stream = skewed_stream()
        partition = degree_balanced_partition(stream, 3, seed=1)
        splits = partition.split_events(stream)
        total = np.concatenate(splits)
        assert len(total) == stream.num_events
        assert len(np.unique(total)) == stream.num_events
        # Each split respects ownership and stays time-sorted.
        for shard, positions in enumerate(splits):
            if len(positions) == 0:
                continue
            assert np.all(partition.shard_of(stream.src[positions]) == shard)
            assert np.all(np.diff(stream.timestamps[positions]) >= 0)

    def test_select_round_trips_through_event_stream(self):
        stream = skewed_stream(num_events=100, num_nodes=30)
        positions = np.array([3, 10, 42, 99])
        sub = stream.select(positions)
        assert sub.num_events == 4
        assert np.array_equal(sub.src, stream.src[positions])
        assert sub.num_nodes == stream.num_nodes

    def test_partition_rejects_mismatched_shards(self):
        with pytest.raises(ValueError):
            GraphPartition(num_shards=2, assignment=np.array([0, 1, 5]), method="x", seed=0)


class TestRegistry:
    def test_available_partitioners(self):
        assert available_partitioners() == ["degree", "hash"]

    def test_make_partition_by_name(self):
        stream = skewed_stream(num_events=200, num_nodes=40)
        for name in available_partitioners():
            partition = make_partition(name, stream, 2, seed=0)
            assert partition.num_shards == 2
            assert partition.method in name

    def test_make_partition_unknown_name(self):
        stream = skewed_stream(num_events=10, num_nodes=5)
        with pytest.raises(KeyError):
            make_partition("metis", stream, 2)
