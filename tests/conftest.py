"""Test bootstrap: make ``src/`` importable without an installed package."""

import os
import sys

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)
