"""Multi-GPU machine topology: naming, routing, warm-up, equivalence."""

import pytest

from repro.hw import Machine, MachineSpec, NVLINK3, machine_spec


def exercise(machine):
    """A small deterministic program touching warm-up, kernel and transfers."""
    machine.initialize_gpu(model_bytes=1_000)
    machine.launch_kernel(machine.gpu, "k", 1e6, 1e4)
    machine.transfer(machine.gpu, machine.cpu, 5_000)
    machine.synchronize()
    return [(e.kind, e.name, e.resource, e.start_ms, e.end_ms, e.stream) for e in machine.events]


class TestSingleGpuEquivalence:
    def test_from_spec_1xa6000_matches_cpu_gpu_byte_for_byte(self):
        assert exercise(Machine.cpu_gpu()) == exercise(Machine.from_spec("1xA6000"))

    def test_single_gpu_keeps_seed_names(self):
        machine = Machine.from_spec("1xA6000")
        assert machine.gpu.name == "rtx-a6000"
        assert machine.link.name == "pcie-gen4-x16"

    def test_cpu_only_spec(self):
        machine = Machine.from_spec("cpu-only")
        assert not machine.has_gpu
        assert machine.gpu is None
        assert machine.compute_device is machine.cpu


class TestMultiGpuShape:
    def test_gpu_and_link_naming(self):
        machine = Machine.from_spec("4xA100-pcie")
        assert [g.name for g in machine.gpus] == [
            "a100-sxm:0", "a100-sxm:1", "a100-sxm:2", "a100-sxm:3",
        ]
        assert [l.name for l in machine.links] == [
            "pcie-gen4-x16:0", "pcie-gen4-x16:1",
            "pcie-gen4-x16:2", "pcie-gen4-x16:3",
        ]

    def test_nvlink_topology_has_all_to_all_peer_links(self):
        machine = Machine.from_spec("4xA100-nvlink")
        # 4 host links + C(4,2)=6 peer links.
        assert len(machine.links) == 10
        peer = machine.topology.peer_link(machine.gpus[1], machine.gpus[3])
        assert peer is not None
        assert peer is machine.topology.peer_link(machine.gpus[3], machine.gpus[1])

    def test_device_lookup_by_kind_and_index(self):
        machine = Machine.from_spec("2xA100-pcie")
        assert machine.device("gpu") is machine.gpus[0]
        assert machine.device("gpu:1") is machine.gpus[1]
        assert machine.device("a100-sxm:1") is machine.gpus[1]
        with pytest.raises(KeyError):
            machine.device("gpu:7")

    def test_devices_includes_every_gpu(self):
        machine = Machine.from_spec("4xA100-pcie")
        assert len(machine.devices) == 5  # cpu + 4 gpus

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(name="bad", gpu=None, num_gpus=2)
        with pytest.raises(ValueError):
            MachineSpec(name="bad", num_gpus=1, peer_link=NVLINK3)
        with pytest.raises(KeyError):
            machine_spec("9xH100")


class TestTransferRouting:
    def test_host_to_each_gpu_uses_its_own_link(self):
        machine = Machine.from_spec("2xA100-pcie")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        e0 = machine.transfer(machine.cpu, machine.gpus[0], 1000)
        e1 = machine.transfer(machine.cpu, machine.gpus[1], 1000)
        assert e0.resource == "pcie-gen4-x16:0"
        assert e1.resource == "pcie-gen4-x16:1"

    def test_peer_transfer_is_one_p2p_hop_on_nvlink(self):
        machine = Machine.from_spec("2xA100-nvlink")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        before = len(machine.events)
        event = machine.transfer(machine.gpus[0], machine.gpus[1], 1_000_000)
        transfers = [e for e in machine.events[before:] if e.kind == "transfer"]
        assert len(transfers) == 1
        assert event.resource.startswith("nvlink3")
        link = machine.topology.peer_link(machine.gpus[0], machine.gpus[1])
        assert link.bytes_p2p == 1_000_000

    def test_peer_transfer_stages_through_host_links_on_pcie(self):
        machine = Machine.from_spec("2xA100-pcie")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        before = len(machine.events)
        machine.transfer(machine.gpus[0], machine.gpus[1], 1_000_000)
        transfers = [e for e in machine.events[before:] if e.kind == "transfer"]
        assert [t.resource for t in transfers] == [
            "pcie-gen4-x16:0", "pcie-gen4-x16:1",
        ]
        # The h2d hop starts only after the d2h hop has landed in host memory.
        assert transfers[1].start_ms >= transfers[0].end_ms

    def test_staged_peer_copy_slower_than_nvlink(self):
        def peer_copy_ms(spec):
            machine = Machine.from_spec(spec)
            for gpu in machine.gpus:
                machine.initialize_gpu(device=gpu)
            start = machine.host_time_ms
            machine.transfer(machine.gpus[0], machine.gpus[1], 4_000_000)
            return machine.host_time_ms - start

        assert peer_copy_ms("2xA100-nvlink") < peer_copy_ms("2xA100-pcie")

    def test_wait_for_source_false_skips_source_compute_backlog(self):
        """A copy of resident data (warm feature rows) must not serialize
        behind unrelated compute queued on the source GPU."""
        machine = Machine.from_spec("2xA100-nvlink")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        machine.synchronize()
        machine.launch_kernel(machine.gpus[0], "busy", 1e12, 0)  # long backlog
        backlog_end = machine.gpus[0].default_stream.free_at
        issued_at = machine.host_time_ms
        assert issued_at < backlog_end  # async launch left the host ahead
        resident = machine.transfer(machine.gpus[0], machine.gpus[1], 1000, wait_for_source=False)
        assert resident.start_ms < backlog_end
        assert resident.start_ms >= issued_at
        waiting = machine.transfer(machine.gpus[0], machine.gpus[1], 1000)
        assert waiting.start_ms >= backlog_end - 1e-9

    def test_staged_transfer_rejects_explicit_stream(self):
        machine = Machine.from_spec("2xA100-pcie")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        stream = machine.links[0].stream("mine")
        with pytest.raises(ValueError):
            machine.transfer(machine.gpus[0], machine.gpus[1], 100, stream=stream)

    def test_non_blocking_uses_each_links_copy_stream(self):
        machine = Machine.from_spec("2xA100-pcie")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        event = machine.transfer(machine.cpu, machine.gpus[1], 1000, non_blocking=True)
        assert event.resource == "pcie-gen4-x16:1"
        assert event.stream == "copy"


class TestPerGpuWarmupAndSync:
    def test_each_gpu_warms_independently(self):
        machine = Machine.from_spec("2xA100-pcie")
        machine.launch_kernel(machine.gpus[1], "k", 1e6, 0)
        assert machine.gpu_ready(machine.gpus[1])
        assert not machine.gpu_ready(machine.gpus[0])
        assert not machine.gpu_context_ready
        machine.launch_kernel(machine.gpus[0], "k", 1e6, 0)
        assert machine.gpu_context_ready

    def test_kernels_on_different_gpus_overlap(self):
        machine = Machine.from_spec("2xA100-pcie")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        machine.synchronize()
        # Large kernels so device time dwarfs the host dispatch overhead.
        a = machine.launch_kernel(machine.gpus[0], "a", 5e10, 0)
        b = machine.launch_kernel(machine.gpus[1], "b", 5e10, 0)
        assert a.start_ms < b.end_ms and b.start_ms < a.end_ms

    def test_device_synchronize_joins_only_one_gpu(self):
        machine = Machine.from_spec("2xA100-pcie")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        machine.synchronize()
        machine.launch_kernel(machine.gpus[0], "short", 1e6, 0)
        machine.launch_kernel(machine.gpus[1], "long", 1e12, 0)
        machine.device_synchronize(machine.gpus[0])
        assert machine.host_time_ms < machine.gpus[1].free_at
        machine.device_synchronize(machine.gpus[1])
        assert machine.host_time_ms >= machine.gpus[1].free_at - 1e-9

    def test_synchronize_drains_every_link(self):
        machine = Machine.from_spec("2xA100-pcie")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        machine.transfer(machine.cpu, machine.gpus[1], 10_000_000, non_blocking=True)
        assert machine.links[1].free_at > machine.host_time_ms
        machine.synchronize()
        assert machine.links[1].free_at <= machine.host_time_ms + 1e-9

    def test_placement_context_pins_compute_device(self):
        machine = Machine.from_spec("2xA100-pcie")
        assert machine.compute_device is machine.gpus[0]
        with machine.placement(machine.gpus[1]):
            assert machine.compute_device is machine.gpus[1]
            with machine.placement("cpu"):
                assert machine.compute_device is machine.cpu
            assert machine.compute_device is machine.gpus[1]
        assert machine.compute_device is machine.gpus[0]

    def test_per_device_flop_accounting(self):
        machine = Machine.from_spec("2xA100-pcie")
        for gpu in machine.gpus:
            machine.initialize_gpu(device=gpu)
        machine.launch_kernel(machine.gpus[0], "a", 1e6, 0)
        machine.launch_kernel(machine.gpus[1], "b", 3e6, 0)
        assert machine.device_flops("a100-sxm:0") == pytest.approx(1e6)
        assert machine.device_flops("a100-sxm:1") == pytest.approx(3e6)

    def test_device_utilization_named_explicitly(self):
        machine = Machine.from_spec("2xA100-pcie")
        machine.initialize_gpu(device=machine.gpus[1])
        start = machine.host_time_ms
        machine.launch_kernel(machine.gpus[1], "k", 5e9, 0)
        machine.synchronize()
        end = machine.host_time_ms
        assert machine.device_utilization("gpu:1", start, end) > 0
        assert machine.device_utilization("gpu:0", start, end) == 0
