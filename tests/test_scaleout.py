"""Scale-out serving: replicated throughput/latency wins, sharded execution."""

import pytest

from repro.datasets import load
from repro.graph.partition import make_partition
from repro.hw import Machine
from repro.models.tgat import TGAT, TGATConfig
from repro.serve import (
    InferenceServer,
    ScaleOutServer,
    ShardedModel,
    build_replicas,
    generate_requests,
    make_arrival_process,
    make_policy,
    make_router,
)


def make_dataset():
    return load("wikipedia", scale="tiny")


def make_replicas(dataset, spec, num_gpus, batch_size=32, num_neighbors=10, seed=0):
    machine = Machine.from_spec(spec)
    config = TGATConfig(num_neighbors=num_neighbors, batch_size=batch_size, seed=seed)
    with machine.activate():
        return build_replicas(
            machine,
            lambda: TGAT(machine, dataset, config),
            machine.gpus[:num_gpus],
        )


def serve_replicated(dataset, spec, num_gpus, rate, router="round-robin",
                     duration_ms=300.0, seed=0):
    replicas = make_replicas(dataset, spec, num_gpus, seed=seed)
    arrivals = make_arrival_process("poisson", rate, seed=seed)
    requests = generate_requests(
        dataset.stream, arrivals, duration_ms=duration_ms,
        events_per_request=4, slo_ms=50.0,
    )
    policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
    server = ScaleOutServer(replicas, policy, make_router(router, len(replicas)))
    return server.serve(requests, label=f"{spec}-x{num_gpus}")


class TestReplicatedServing:
    def test_two_gpus_strictly_beat_one_at_queueing_rate(self):
        """The headline scale-out claim: at a rate that queues on one GPU,
        adding a replica strictly improves throughput *and* p99."""
        dataset = make_dataset()
        rate = 800.0  # above the ~600 req/s single-replica capacity
        one = serve_replicated(dataset, "1xA100", 1, rate)
        two = serve_replicated(dataset, "2xA100-pcie", 2, rate)
        assert one.completed == two.completed  # same offered workload
        assert two.throughput_rps > one.throughput_rps
        assert two.total_latency().p99_ms < one.total_latency().p99_ms

    def test_replicas_share_the_load(self):
        dataset = make_dataset()
        report = serve_replicated(dataset, "2xA100-pcie", 2, 800.0)
        spread = report.requests_per_replica()
        assert set(spread) == {0, 1}
        assert min(spread.values()) > 0

    def test_deterministic_under_fixed_seed(self):
        dataset = make_dataset()
        a = serve_replicated(dataset, "2xA100-pcie", 2, 700.0, seed=3)
        b = serve_replicated(dataset, "2xA100-pcie", 2, 700.0, seed=3)
        assert a.summary() == b.summary()

    def test_per_device_utilization_reported_for_every_gpu(self):
        dataset = make_dataset()
        report = serve_replicated(dataset, "2xA100-pcie", 2, 800.0)
        assert set(report.per_device_utilization) == {"a100-sxm:0", "a100-sxm:1"}
        assert all(v > 0 for v in report.per_device_utilization.values())
        assert report.placement == "replicate"
        assert report.num_replicas == 2

    def test_all_requests_complete_with_consistent_latencies(self):
        dataset = make_dataset()
        report = serve_replicated(dataset, "2xA100-pcie", 2, 700.0)
        assert report.completed == report.offered
        for request in report.requests:
            assert request.completed_ms >= request.dispatched_ms
            # Admission tolerates a 1e-9 clock epsilon, so allow it here too.
            assert request.dispatched_ms >= request.arrival_ms - 1e-6
            assert request.replica in (0, 1)

    def test_jsq_router_end_to_end(self):
        dataset = make_dataset()
        report = serve_replicated(dataset, "2xA100-pcie", 2, 800.0, router="jsq")
        assert report.completed == report.offered
        assert "jsq" in report.router

    def test_rejects_models_without_async_dispatch(self):
        dataset = make_dataset()
        replicas = make_replicas(dataset, "2xA100-pcie", 2)

        class Blocking:
            machine = replicas[0].machine
            supports_async_dispatch = False

        policy = make_policy("fifo")
        with pytest.raises(TypeError):
            ScaleOutServer([Blocking(), Blocking()], policy, make_router("jsq", 2))

    def test_rejects_router_replica_mismatch(self):
        dataset = make_dataset()
        replicas = make_replicas(dataset, "2xA100-pcie", 2)
        policy = make_policy("fifo")
        with pytest.raises(ValueError):
            ScaleOutServer(replicas, policy, make_router("jsq", 3))

    def test_router_feedback_excludes_queue_behind_own_replica(self):
        """The router must see per-batch *execution* time: a batch that sat
        behind its replica's previous batch reports only its own span."""
        from repro.hw.stream import StreamEvent
        from repro.serve.request import Request

        dataset = make_dataset()
        replicas = make_replicas(dataset, "1xA100", 1)
        policy = make_policy("fifo")
        router = make_router("least-latency", 1)
        observed = []
        original = router.notify_complete
        router.notify_complete = lambda i, n, ms: (observed.append(ms), original(i, n, ms))
        server = ScaleOutServer(replicas, policy, router)
        machine = server.machine

        def fake(request_id, dispatched, ready):
            request = Request(request_id=request_id, arrival_ms=dispatched,
                              payload=None, dispatched_ms=dispatched)
            event = StreamEvent(stream="default", resource="a100-sxm",
                                ready_ms=ready, name="t")
            return ([request], 0, event, None)

        # Batch A: dispatched at 0, done at 10.  Batch B: dispatched at 1,
        # done at 18 -- it executed for 8 ms after A finished, though its
        # dispatch->completion span is 17 ms.
        server._inflight = [fake(0, 0.0, 10.0), fake(1, 1.0, 18.0)]
        machine.advance_host(20.0 - machine.host_time_ms)
        server._retire(0.0, [])
        assert observed == [pytest.approx(10.0), pytest.approx(8.0)]

    def test_empty_workload_returns_empty_report(self):
        dataset = make_dataset()
        replicas = make_replicas(dataset, "2xA100-pcie", 2)
        policy = make_policy("fifo")
        server = ScaleOutServer(replicas, policy, make_router("round-robin", 2))
        report = server.serve([])
        assert report.completed == 0 and report.offered == 0


class TestShardedServing:
    def serve_sharded(self, dataset, spec, num_gpus, rate=250.0, seed=0,
                      partitioner="degree"):
        replicas = make_replicas(dataset, spec, num_gpus, seed=seed)
        partition = make_partition(partitioner, dataset.stream, num_gpus, seed=seed)
        sharded = ShardedModel(replicas, partition)
        arrivals = make_arrival_process("poisson", rate, seed=seed)
        requests = generate_requests(
            dataset.stream, arrivals, duration_ms=200.0,
            events_per_request=4, slo_ms=100.0,
        )
        policy = make_policy("timeout", max_batch_size=8, batch_timeout_ms=4.0)
        server = InferenceServer(sharded, policy)
        return (sharded, server.serve(requests, label=f"shard-{spec}"))

    def test_sharded_serving_completes_and_reports_shard_placement(self):
        dataset = make_dataset()
        sharded, report = self.serve_sharded(dataset, "2xA100-nvlink", 2)
        assert report.completed == report.offered > 0
        assert report.placement == "shard"
        assert report.num_replicas == 2

    def test_cross_shard_gathers_are_charged_to_the_interconnect(self):
        dataset = make_dataset()
        sharded, _ = self.serve_sharded(dataset, "2xA100-nvlink", 2)
        assert sharded.cross_shard_rows > 0
        machine = sharded.machine
        peer = machine.topology.peer_link(machine.gpus[0], machine.gpus[1])
        assert peer.bytes_p2p > 0

    def test_pcie_sharding_stages_gathers_through_host_links(self):
        dataset = make_dataset()
        sharded, _ = self.serve_sharded(dataset, "2xA100-pcie", 2)
        machine = sharded.machine
        gather_bytes = [
            e.bytes
            for e in machine.events
            if e.kind == "transfer" and e.name == "shard_gather"
        ]
        assert gather_bytes  # staged hops emit transfer events on host links
        assert all(
            e.resource.startswith("pcie")
            for e in machine.events
            if e.kind == "transfer" and e.name == "shard_gather"
        )

    def test_both_gpus_do_work(self):
        dataset = make_dataset()
        _, report = self.serve_sharded(dataset, "2xA100-nvlink", 2)
        utils = report.per_device_utilization
        assert len(utils) == 2
        assert all(v > 0 for v in utils.values())

    def test_deterministic_under_fixed_seed(self):
        dataset = make_dataset()
        _, a = self.serve_sharded(dataset, "2xA100-nvlink", 2, seed=5)
        _, b = self.serve_sharded(dataset, "2xA100-nvlink", 2, seed=5)
        assert a.summary() == b.summary()

    def test_rejects_partition_replica_mismatch(self):
        dataset = make_dataset()
        replicas = make_replicas(dataset, "2xA100-pcie", 2)
        partition = make_partition("hash", dataset.stream, 3, seed=0)
        with pytest.raises(ValueError):
            ShardedModel(replicas, partition)


class TestScalingExperiment:
    def test_scaling_experiment_headline_invariants(self):
        from repro.experiments import run_experiment

        result = run_experiment(
            "scaling",
            scale="tiny",
            configs=(
                ("1xA100", 1, "replicate"),
                ("2xA100-pcie", 2, "replicate"),
            ),
            utilizations=(1.5,),
            duration_ms=250.0,
        )
        rows = {row["spec"]: row for row in result.rows}
        one, two = (rows["1xA100"], rows["2xA100-pcie"])
        assert two["throughput_rps"] > one["throughput_rps"]
        assert two["p99_ms"] < one["p99_ms"]
        assert two["throughput_vs_1gpu"] > 1.0
        assert two["p99_vs_1gpu"] < 1.0
