"""The `serving` experiment: sweep shape, acceptance property, seeding."""

import json

import pytest

from repro.experiments import run_experiment
from repro.experiments.serving import run as run_serving

#: Fast settings shared by the tests: tiny dataset, short window.
FAST = dict(
    scale="tiny",
    duration_ms=120.0,
    policies=("fifo", "slo"),
    utilizations=(1.2, 1.6),
)


@pytest.fixture(scope="module")
def serving_result():
    return run_serving(seed=0, **FAST)


def test_sweep_covers_policies_by_rates_by_modes(serving_result):
    rows = serving_result.rows
    combos = {(r["policy"], r["utilization"], r["mode"]) for r in rows}
    assert len(rows) == len(combos) == 2 * 2 * 2
    for row in rows:
        for column in (
            "p50_ms", "p95_ms", "p99_ms", "throughput_rps",
            "slo_violation_rate", "gpu_util",
        ):
            assert column in row, column
        assert row["requests"] > 0


def test_overlap_p99_strictly_below_blocking_at_every_rate(serving_result):
    """The acceptance criterion, per (policy, arrival-rate) pair."""
    rows = serving_result.rows
    pairs = 0
    for policy in ("fifo", "slo"):
        for utilization in (1.2, 1.6):
            by_mode = {
                r["mode"]: r
                for r in rows
                if r["policy"] == policy and r["utilization"] == utilization
            }
            assert set(by_mode) == {"blocking", "overlap"}
            assert by_mode["overlap"]["p99_ms"] < by_mode["blocking"]["p99_ms"]
            pairs += 1
    assert pairs == 4


def test_serving_runs_are_byte_identical_for_the_same_seed():
    first = run_serving(seed=7, **FAST)
    second = run_serving(seed=7, **FAST)
    assert json.dumps(first.rows, sort_keys=True) == json.dumps(second.rows, sort_keys=True)


def test_different_seeds_draw_different_workloads():
    shorter = dict(FAST, utilizations=(1.2,), policies=("fifo",), modes=("blocking",))
    a = run_serving(seed=1, **shorter)
    b = run_serving(seed=2, **shorter)
    assert json.dumps(a.rows) != json.dumps(b.rows)


def test_run_experiment_threads_seed_and_drops_it_elsewhere():
    # `serving` declares seed: the value must reach the workload generators.
    seeded = run_experiment(
        "serving", seed=5, **dict(FAST, utilizations=(1.2,), policies=("fifo",),
                                  modes=("blocking",))
    )
    direct = run_serving(
        seed=5, **dict(FAST, utilizations=(1.2,), policies=("fifo",),
                       modes=("blocking",))
    )
    assert json.dumps(seeded.rows) == json.dumps(direct.rows)
    # `table1` does not declare seed: the shared CLI kwarg is dropped, not fatal.
    table = run_experiment("table1", seed=5)
    assert table.rows
