"""Seed-equivalence golden tests for the paper artefacts.

Each golden file under ``tests/golden/`` is the canonical JSON serialization
of one experiment's rows+notes on its default config at ``tiny`` scale.  The
tests assert the *serialized bytes* match, so any refactor that drifts a
figure/table number -- a reordered kernel, a changed cost constant, a float
that moved by one ulp -- fails loudly instead of silently rewriting the
paper's numbers.

Regenerate (only when a change is *supposed* to move the numbers, and say so
in the commit message)::

    PYTHONPATH=src python tests/test_golden_regression.py --regenerate
"""

import json
import os

import pytest

from repro.experiments import run_experiment

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")

#: Experiments pinned by golden files, with the config the goldens captured.
GOLDEN_EXPERIMENTS = {
    "table1": {},
    "table2": {"scale": "tiny"},
    "fig6": {"scale": "tiny"},
    "fig7": {"scale": "tiny"},
    "fig8": {"scale": "tiny"},
    "fig9": {"scale": "tiny"},
}


def canonical_json(name, kwargs):
    """Deterministic byte-for-byte serialization of one experiment run."""
    result = run_experiment(name, **kwargs)
    payload = {
        "experiment": result.experiment,
        "config": dict(kwargs),
        "rows": result.rows,
        "notes": result.notes,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def golden_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.json")


@pytest.mark.parametrize("name", sorted(GOLDEN_EXPERIMENTS))
def test_experiment_matches_golden(name):
    path = golden_path(name)
    assert os.path.exists(path), (
        f"golden file {path} is missing; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_regression.py --regenerate`"
    )
    with open(path, "r", encoding="utf-8") as handle:
        expected = handle.read()
    actual = canonical_json(name, GOLDEN_EXPERIMENTS[name])
    assert actual == expected, (
        f"{name} output drifted from the golden file.  If the change is "
        "intentional, regenerate the goldens and justify the drift in the "
        "commit message."
    )


def regenerate():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, kwargs in sorted(GOLDEN_EXPERIMENTS.items()):
        path = golden_path(name)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(name, kwargs))
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
