"""Scheduling invariants of the simulated machine.

These pin the seed's serialized semantics: blocking CPU kernels, asynchronous
GPU launches behind a single queue, blocking link transfers, join-all
synchronisation and one-time warm-up.  The stream engine must preserve all of
them when only default streams are used.
"""

import pytest

from repro.hw import KERNEL, SYNC, TRANSFER, WARMUP, Machine


@pytest.fixture
def machine():
    return Machine.cpu_gpu()


def warmed(machine):
    machine.initialize_gpu(model_bytes=0)
    return machine


class TestHostCursor:
    def test_cpu_kernel_blocks_host(self, machine):
        start = machine.host_time_ms
        event = machine.launch_kernel(machine.cpu, "cpu_op", flops=1e6, bytes_moved=1e3)
        assert machine.host_time_ms == event.end_ms
        assert event.end_ms > start

    def test_host_work_blocks_host(self, machine):
        machine.host_work("preprocess", 5.0)
        assert machine.host_time_ms == pytest.approx(5.0)

    def test_gpu_kernel_is_asynchronous(self, machine):
        warmed(machine)
        before = machine.host_time_ms
        event = machine.launch_kernel(machine.gpu, "gemm", flops=1e9, bytes_moved=1e6)
        # The host pays only the launch-call overhead, not the kernel duration.
        overhead_ms = machine.gpu.spec.host_overhead_us * 1e-3
        assert machine.host_time_ms == pytest.approx(before + overhead_ms)
        assert event.end_ms > machine.host_time_ms

    def test_gpu_kernels_serialize_on_default_stream(self, machine):
        warmed(machine)
        first = machine.launch_kernel(machine.gpu, "k1", flops=1e9, bytes_moved=0)
        second = machine.launch_kernel(machine.gpu, "k2", flops=1e9, bytes_moved=0)
        assert second.start_ms >= first.end_ms


class TestTransfers:
    def test_blocking_transfer_occupies_link_and_host(self, machine):
        warmed(machine)
        nbytes = 2_000_000
        event = machine.transfer(machine.cpu, machine.gpu, nbytes)
        expected_ms = machine.link.spec.transfer_ms(nbytes)
        assert event.duration_ms == pytest.approx(expected_ms)
        assert machine.host_time_ms == event.end_ms
        assert machine.link.bytes_h2d == nbytes
        assert machine.link.transfer_count == 1

    def test_transfer_waits_for_producing_device(self, machine):
        warmed(machine)
        kernel = machine.launch_kernel(machine.gpu, "produce", flops=1e10, bytes_moved=0)
        copy = machine.transfer(machine.gpu, machine.cpu, 1000)
        assert copy.start_ms >= kernel.end_ms

    def test_transfer_rejects_same_device(self, machine):
        with pytest.raises(ValueError):
            machine.transfer(machine.cpu, machine.cpu, 10)

    def test_direction_accounting(self, machine):
        warmed(machine)
        machine.transfer(machine.cpu, machine.gpu, 100)
        machine.transfer(machine.gpu, machine.cpu, 40)
        assert machine.link.bytes_h2d == 100
        assert machine.link.bytes_d2h == 40
        assert machine.link.total_bytes == 140


class TestSynchronize:
    def test_synchronize_joins_all_queued_work(self, machine):
        warmed(machine)
        kernel = machine.launch_kernel(machine.gpu, "slow", flops=1e11, bytes_moved=0)
        assert machine.host_time_ms < kernel.end_ms
        sync = machine.synchronize()
        assert sync.kind == SYNC
        assert machine.host_time_ms == pytest.approx(kernel.end_ms)

    def test_synchronize_is_noop_when_idle(self, machine):
        warmed(machine)
        before = machine.host_time_ms
        sync = machine.synchronize()
        assert sync.duration_ms == 0.0
        assert machine.host_time_ms == before


class TestWarmup:
    def test_gpu_context_initialized_once(self, machine):
        events = machine.initialize_gpu(model_bytes=0)
        assert [e.kind for e in events] == [WARMUP]
        assert machine.gpu_context_ready
        assert machine.initialize_gpu(model_bytes=0) == []

    def test_first_gpu_kernel_triggers_warmup(self, machine):
        machine.launch_kernel(machine.gpu, "k", flops=1.0, bytes_moved=0)
        kinds = [e.kind for e in machine.events]
        assert kinds[0] == WARMUP
        assert KERNEL in kinds

    def test_weight_upload_is_a_transfer(self, machine):
        events = machine.initialize_gpu(model_bytes=1_000_000)
        assert [e.kind for e in events] == [WARMUP, TRANSFER]
        assert events[1].name == "weight_upload"

    def test_cpu_only_machine_has_no_warmup(self):
        machine = Machine.cpu_only()
        assert machine.initialize_gpu() == []
        assert machine.allocation_warmup(1000) is None


class TestRegionsAndMemory:
    def test_regions_annotate_events(self, machine):
        with machine.region("iteration"):
            with machine.region("Sampling"):
                event = machine.host_work("sample", 1.0)
        assert event.region == ("iteration", "Sampling")
        assert machine.current_region == ()

    def test_alloc_free_roundtrip(self, machine):
        alloc_id = machine.alloc(machine.cpu, 4096, tag="buf")
        assert machine.cpu.memory.current_bytes == 4096
        freed = machine.free(machine.cpu, alloc_id)
        assert freed == 4096
        assert machine.cpu.memory.current_bytes == 0

    def test_running_flop_counters(self, machine):
        warmed(machine)
        machine.launch_kernel(machine.cpu, "a", flops=100.0, bytes_moved=0)
        machine.launch_kernel(machine.gpu, "b", flops=50.0, bytes_moved=0)
        machine.launch_kernel(machine.gpu, "c", flops=25.0, bytes_moved=0)
        assert machine.device_flops(machine.cpu.name) == pytest.approx(100.0)
        assert machine.device_flops(machine.gpu.name) == pytest.approx(75.0)
        # The counters mirror an event-log scan, without the O(n^2) rescans.
        scanned = {}
        for event in machine.events:
            if event.kind == KERNEL:
                scanned[event.resource] = scanned.get(event.resource, 0.0) + event.flops
        assert machine.device_flops_totals() == pytest.approx(scanned)
