"""Adaptive-fidelity serving: controller mechanics and end-to-end identity."""

import pytest

from repro.cache import backfill_embeddings, hot_nodes, make_model_cache
from repro.datasets import load
from repro.fuzz.program import signature
from repro.hw import Machine
from repro.models.tgat import TGAT, TGATConfig
from repro.serve import (
    FULL_FIDELITY,
    FidelityConfig,
    FidelityController,
    InferenceServer,
    PoissonProcess,
    applicable_policy_overrides,
    generate_requests,
    make_fidelity_controller,
    make_policy,
)


@pytest.fixture(scope="module")
def tiny_wikipedia():
    return load("wikipedia", scale="tiny")


def _controller(**overrides) -> FidelityController:
    return FidelityController(config=FidelityConfig(**overrides))


# -- controller unit behaviour ------------------------------------------------


class TestLeverOrdering:
    def test_levels_escalate_one_at_a_time_in_lever_order(self):
        controller = _controller()
        controller.set_cache_available(True)
        d1 = controller.on_dispatch(True, 4)
        assert d1.level == 1
        assert d1.fanout_scale < 1.0
        assert d1.staleness_scale == 1.0 and not d1.force_hits
        d2 = controller.on_dispatch(True, 4)
        assert d2.level == 2
        assert d2.staleness_scale > 1.0 and not d2.force_hits
        d3 = controller.on_dispatch(True, 4, lost_deadlines=2)
        assert d3.level == 3
        assert d3.force_hits
        # Cost scales strictly decrease as levers stack.
        assert 1.0 > d1.cost_scale > d2.cost_scale > d3.cost_scale > 0.0

    def test_without_cache_the_cache_levers_are_capped(self):
        controller = _controller()
        controller.set_cache_available(False)
        for _ in range(5):
            decision = controller.on_dispatch(True, 4, lost_deadlines=2)
        assert decision.level == 1
        assert decision.staleness_scale == 1.0
        assert not decision.force_hits
        snapshot = controller.snapshot()
        assert snapshot["stale_requests"] == 0
        assert snapshot["forced_requests"] == 0

    def test_force_hits_requires_lost_deadlines(self):
        controller = _controller()
        controller.set_cache_available(True)
        for _ in range(3):
            controller.on_dispatch(True, 4, lost_deadlines=1)
        decision = controller.on_dispatch(True, 4, lost_deadlines=0)
        # Level 3 without lost deadlines downgrades to the level-2 levers.
        assert not decision.force_hits
        assert decision.cost_scale == controller.cost_scale(2)


class TestRecoveryHysteresis:
    def test_recovery_needs_consecutive_clear_batches(self):
        controller = _controller(recovery_batches=3)
        controller.set_cache_available(True)
        controller.on_dispatch(True, 4)
        controller.on_dispatch(True, 4)
        assert controller.level == 2
        # Two clears, then pressure again: the streak resets, no decay yet.
        controller.on_dispatch(False, 4)
        controller.on_dispatch(False, 4)
        assert controller.level == 2
        controller.on_dispatch(True, 4)
        assert controller.level == 3
        # Now a full clear run decays exactly one level per streak.
        for _ in range(3):
            controller.on_dispatch(False, 4)
        assert controller.level == 2
        for _ in range(6):
            controller.on_dispatch(False, 4)
        assert controller.level == 0
        # Recovered: further clear dispatches are full fidelity.
        decision = controller.on_dispatch(False, 4)
        assert decision == FULL_FIDELITY


class TestDebtConservation:
    def test_debt_equals_weighted_lever_counters(self):
        controller = _controller()
        controller.set_cache_available(True)
        batches = [(True, 4, 0), (True, 8, 0), (True, 6, 3), (False, 2, 0)]
        for pressured, size, lost in batches:
            controller.on_dispatch(pressured, size, lost_deadlines=lost)
        snapshot = controller.snapshot()
        from repro.serve.fidelity import DEBT_WEIGHTS as weights
        expected = (
            weights["fanout"] * snapshot["fanout_requests"]
            + weights["stale"] * snapshot["stale_requests"]
            + weights["forced"] * snapshot["forced_requests"]
        )
        assert controller.debt_score == expected
        assert snapshot["debt_score"] == expected
        # Requests served degraded are bounded by total requests dispatched.
        total_requests = sum(size for _, size, _ in batches)
        assert snapshot["fanout_requests"] <= total_requests
        assert snapshot["degraded_batches"] <= snapshot["total_dispatches"]

    def test_zero_pressure_accrues_zero_debt(self):
        controller = _controller()
        controller.set_cache_available(True)
        for _ in range(20):
            assert controller.on_dispatch(False, 8) == FULL_FIDELITY
        assert controller.debt_score == 0.0
        assert controller.snapshot()["degraded_batches"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FidelityConfig(fanout_scale=0.0)
        with pytest.raises(ValueError):
            FidelityConfig(staleness_scale=0.5)
        with pytest.raises(ValueError):
            FidelityConfig(recovery_batches=0)
        assert make_fidelity_controller(enabled=False) is None


# -- end-to-end ---------------------------------------------------------------


def _serve(dataset, rate, fidelity, cached=False, duration_ms=60.0):
    machine = Machine.cpu_gpu()
    config = TGATConfig(num_neighbors=5, batch_size=8, seed=0)
    with machine.activate():
        model = TGAT(machine, dataset, config)
    if cached:
        make_model_cache(model, policy="lru", capacity_mb=8.0, staleness_ms=1e6)
    policy = make_policy(
        "slo",
        max_batch_size=8,
        **applicable_policy_overrides("slo", batch_timeout_ms=2.0, slo_ms=20.0),
    )
    requests = generate_requests(
        dataset.stream, PoissonProcess(rate, seed=7),
        duration_ms=duration_ms, events_per_request=1, slo_ms=20.0,
    )
    controller = make_fidelity_controller() if fidelity else None
    server = InferenceServer(model, policy, fidelity=controller)
    report = server.serve(requests, label="fidelity-test", arrival_name="poisson")
    return machine, report


class TestServingIntegration:
    def test_fidelity_off_is_event_for_event_identical(self, tiny_wikipedia):
        """An attached-but-idle controller must not perturb the timeline."""
        machine_off, report_off = _serve(tiny_wikipedia, 250.0, fidelity=False)
        machine_on, report_on = _serve(tiny_wikipedia, 250.0, fidelity=True)
        assert report_on.fidelity is not None
        assert report_on.fidelity["debt_score"] == 0.0
        assert signature(machine_off) == signature(machine_on)
        assert [r.completed_ms for r in report_off.requests] == [
            r.completed_ms for r in report_on.requests
        ]

    def test_overload_degrades_and_improves_the_tail(self, tiny_wikipedia):
        _, report_off = _serve(tiny_wikipedia, 6000.0, fidelity=False)
        _, report_on = _serve(tiny_wikipedia, 6000.0, fidelity=True)
        snapshot = report_on.fidelity
        assert snapshot["debt_score"] > 0.0
        assert snapshot["degraded_batches"] > 0
        assert snapshot["max_level_seen"] >= 1
        assert report_on.total_latency().p99_ms < report_off.total_latency().p99_ms
        assert "fidelity: debt" in report_on.format_table()

    def test_cache_unlocks_the_deeper_levers(self, tiny_wikipedia):
        _, report = _serve(tiny_wikipedia, 6000.0, fidelity=True, cached=True)
        snapshot = report.fidelity
        assert snapshot["max_level_seen"] >= 2
        assert snapshot["stale_requests"] > 0

    def test_fidelity_requires_the_slo_policy(self, tiny_wikipedia):
        machine = Machine.cpu_gpu()
        config = TGATConfig(num_neighbors=5, batch_size=8, seed=0)
        with machine.activate():
            model = TGAT(machine, tiny_wikipedia, config)
        policy = make_policy("fifo", max_batch_size=8)
        with pytest.raises(TypeError, match="slo"):
            InferenceServer(model, policy, fidelity=make_fidelity_controller())


# -- backfill -----------------------------------------------------------------


class TestBackfill:
    def test_hot_nodes_are_degree_ranked_and_deterministic(self, tiny_wikipedia):
        machine = Machine.cpu_gpu()
        config = TGATConfig(num_neighbors=5, batch_size=8, seed=0)
        with machine.activate():
            model = TGAT(machine, tiny_wikipedia, config)
        ranked = hot_nodes(model, top_k=8)
        assert ranked == hot_nodes(model, top_k=8)
        degrees = [model.sampler.total_degree(node) for node in ranked]
        assert degrees == sorted(degrees, reverse=True)
        assert all(degree > 0 for degree in degrees)

    def test_backfill_inserts_rows_at_simulated_cost(self, tiny_wikipedia):
        machine = Machine.cpu_gpu()
        config = TGATConfig(num_neighbors=5, batch_size=8, seed=0)
        with machine.activate():
            model = TGAT(machine, tiny_wikipedia, config)
        make_model_cache(model, policy="lru", capacity_mb=8.0, staleness_ms=1e6)
        before = machine.host_time_ms
        report = backfill_embeddings(model, top_k=16)
        assert report.computed == 16
        assert report.inserted > 0
        assert report.elapsed_ms > 0.0
        assert machine.host_time_ms > before
        assert model.cache.embeddings.stats.inserts >= report.inserted

    def test_backfill_without_cache_raises(self, tiny_wikipedia):
        machine = Machine.cpu_gpu()
        config = TGATConfig(num_neighbors=5, batch_size=8, seed=0)
        with machine.activate():
            model = TGAT(machine, tiny_wikipedia, config)
        with pytest.raises(TypeError, match="cache"):
            backfill_embeddings(model, top_k=4)
