"""Perf-safety regression tests: the optimized hot path must be a pure
speedup.

The PR that introduced the benchmark subsystem rewrote the scheduler's inner
loops (incremental busy accounting, cached kernel costs and routes, batched
kernel charging, vectorized sampler index construction).  These tests pin
the optimized implementations against reference slow-path implementations --
verbatim copies of the pre-optimization code -- on randomized programs:
same intervals, same event logs, same samples, byte for byte.
"""

import numpy as np
import pytest

from repro.graph.events import EventStream
from repro.graph.sampling import TemporalNeighborSampler
from repro.hw.machine import Machine
from repro.hw.spec import MACHINE_SPECS
from repro.hw.stream import union_busy_ms
from repro.hw.timeline import Timeline


# -- reference slow paths (pre-optimization implementations) ---------------


def reference_busy_ms(intervals, start_ms=None, end_ms=None):
    """Pre-optimization Timeline.busy_ms: a full scan per query."""
    if start_ms is None and end_ms is None:
        return sum(i.duration_ms for i in intervals)
    lo = start_ms if start_ms is not None else float("-inf")
    hi = end_ms if end_ms is not None else float("inf")
    total = 0.0
    for interval in intervals:
        overlap = min(interval.end_ms, hi) - max(interval.start_ms, lo)
        if overlap > 0:
            total += overlap
    return total


def reference_union_busy_ms(timelines, start_ms=None, end_ms=None):
    """Pre-optimization union_busy_ms: clip everything, sort, merge."""
    lo = start_ms if start_ms is not None else float("-inf")
    hi = end_ms if end_ms is not None else float("inf")
    spans = []
    for timeline in timelines:
        for interval in timeline:
            clipped_lo = max(interval.start_ms, lo)
            clipped_hi = min(interval.end_ms, hi)
            if clipped_hi > clipped_lo:
                spans.append((clipped_lo, clipped_hi))
    if not spans:
        return 0.0
    spans.sort()
    total = 0.0
    current_lo, current_hi = spans[0]
    for span_lo, span_hi in spans[1:]:
        if span_lo > current_hi:
            total += current_hi - current_lo
            current_lo, current_hi = (span_lo, span_hi)
        else:
            current_hi = max(current_hi, span_hi)
    total += current_hi - current_lo
    return total


def reference_build_index(stream):
    """Pre-optimization sampler index: per-event Python loop + stable sort."""
    adjacency = [[] for _ in range(stream.num_nodes)]
    for index in range(stream.num_events):
        s = int(stream.src[index])
        d = int(stream.dst[index])
        t = float(stream.timestamps[index])
        adjacency[s].append((t, d, index))
        adjacency[d].append((t, s, index))
    packed = []
    for entries in adjacency:
        if entries:
            entries.sort(key=lambda item: item[0])
            times = np.array([e[0] for e in entries], dtype=np.float64)
            neighbors = np.array([e[1] for e in entries], dtype=np.int64)
            event_ids = np.array([e[2] for e in entries], dtype=np.int64)
        else:
            times = np.empty(0, dtype=np.float64)
            neighbors = np.empty(0, dtype=np.int64)
            event_ids = np.empty(0, dtype=np.int64)
        packed.append((times, neighbors, event_ids))
    return packed


def reference_sample(adjacency, rng, uniform, nodes, timestamps, k):
    """Pre-optimization sample loop (minus the machine charge)."""
    batch = len(nodes)
    neighbor_ids = np.zeros((batch, k), dtype=np.int64)
    neighbor_times = np.zeros((batch, k), dtype=np.float64)
    event_indices = np.zeros((batch, k), dtype=np.int64)
    mask = np.zeros((batch, k), dtype=np.float32)
    degrees = np.zeros(batch, dtype=np.int64)
    for row, (node, timestamp) in enumerate(zip(nodes, timestamps)):
        times, neighbors, event_ids = adjacency[int(node)]
        cutoff = int(np.searchsorted(times, timestamp, side="left"))
        degrees[row] = cutoff
        if cutoff == 0:
            continue
        if uniform and cutoff > k:
            chosen = np.sort(rng.choice(cutoff, size=k, replace=False))
        else:
            chosen = np.arange(max(0, cutoff - k), cutoff)
        count = len(chosen)
        neighbor_ids[row, :count] = neighbors[chosen]
        neighbor_times[row, :count] = times[chosen]
        event_indices[row, :count] = event_ids[chosen]
        mask[row, :count] = 1.0
    return (neighbor_ids, neighbor_times, event_indices, mask, degrees)


# -- randomized programs ----------------------------------------------------


def random_stream(rng, num_events=120, num_nodes=25):
    timestamps = np.sort(rng.uniform(0.0, 1000.0, size=num_events))
    return EventStream(
        src=rng.integers(0, num_nodes, size=num_events),
        dst=rng.integers(0, num_nodes, size=num_events),
        timestamps=timestamps,
        num_nodes=num_nodes,
    )


def drive_random_program(machine, seed, steps=120, batch_api=False):
    """Issue a random mix of kernels/transfers/syncs/streams to ``machine``.

    With ``batch_api=True``, runs of identical kernels go through the
    batched ``launch_kernels`` call instead of one ``launch_kernel`` per
    repetition -- the schedules must match exactly either way.
    """
    rng = np.random.default_rng(seed)
    devices = list(machine.devices)
    recorded = []
    with machine.activate():
        for _ in range(steps):
            action = rng.integers(0, 10)
            device = devices[int(rng.integers(0, len(devices)))]
            if action <= 3:
                count = int(rng.integers(1, 5))
                flops = float(rng.integers(1, 50)) * 1e6
                nbytes = float(rng.integers(1, 100)) * 1e3
                stream = machine.stream(device, "worker") if rng.integers(0, 3) == 0 else None
                if batch_api:
                    machine.launch_kernels(device, "k", count, flops, nbytes, stream=stream)
                else:
                    for _ in range(count):
                        machine.launch_kernel(device, "k", flops, nbytes, stream=stream)
            elif action == 4:
                machine.host_work("host", float(rng.uniform(0.01, 0.5)))
            elif action <= 6:
                src = devices[int(rng.integers(0, len(devices)))]
                dst = devices[int(rng.integers(0, len(devices)))]
                if src is not dst:
                    machine.transfer(
                        src,
                        dst,
                        int(rng.integers(1, 10)) * 4096,
                        non_blocking=bool(rng.integers(0, 2)),
                    )
            elif action == 7:
                stream = machine.stream(device, "worker")
                event = machine.record_event(stream, name="mark")
                machine.wait_event(machine.default_stream(device), event)
            elif action == 8:
                machine.synchronize()
            else:
                with machine.region("phase"):
                    machine.host_work("annotated", 0.05)
        machine.synchronize(name="final")
    recorded.extend(machine.events.snapshot())
    return recorded


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_windowed_busy_matches_reference_scan(seed):
    rng = np.random.default_rng(seed)
    timeline = Timeline("t")
    cursor = 0.0
    for _ in range(300):
        cursor += float(rng.uniform(0.0, 2.0))
        timeline.reserve(cursor, float(rng.uniform(0.0, 1.5)), "op")
    intervals = list(timeline)
    assert timeline.busy_ms() == reference_busy_ms(intervals)
    for _ in range(200):
        lo = float(rng.uniform(-10.0, 600.0))
        hi = lo + float(rng.uniform(0.0, 200.0))
        assert timeline.busy_ms(lo, hi) == reference_busy_ms(intervals, lo, hi)
        assert timeline.busy_ms(lo, None) == reference_busy_ms(intervals, lo, None)
        assert timeline.busy_ms(None, hi) == reference_busy_ms(intervals, None, hi)


@pytest.mark.parametrize("seed", [3, 4])
def test_union_busy_matches_reference_merge(seed):
    rng = np.random.default_rng(seed)
    timelines = []
    for _ in range(3):
        timeline = Timeline(f"t{len(timelines)}")
        cursor = 0.0
        for _ in range(150):
            cursor += float(rng.uniform(0.0, 1.0))
            timeline.reserve(cursor, float(rng.uniform(0.0, 2.0)), "op")
        timelines.append(timeline)
    assert union_busy_ms(timelines) == reference_union_busy_ms(timelines)
    # The single-timeline fast path (merged_busy_ms) must agree too.
    single = timelines[0]
    assert single.merged_busy_ms() == reference_union_busy_ms([single])
    for _ in range(100):
        lo = float(rng.uniform(-5.0, 200.0))
        hi = lo + float(rng.uniform(0.0, 100.0))
        assert union_busy_ms(timelines, lo, hi) == reference_union_busy_ms(timelines, lo, hi)
        assert single.merged_busy_ms(lo, hi) == reference_union_busy_ms([single], lo, hi)


@pytest.mark.parametrize("spec", ["1xA6000", "2xA100-pcie", "2xA100-nvlink"])
@pytest.mark.parametrize("seed", [11, 12])
def test_batched_kernel_charging_is_byte_identical(spec, seed):
    """launch_kernels == a loop of launch_kernel, on every topology."""
    loop_machine = Machine.from_spec(spec)
    batch_machine = Machine.from_spec(spec)
    loop_events = drive_random_program(loop_machine, seed, batch_api=False)
    batch_events = drive_random_program(batch_machine, seed, batch_api=True)
    assert loop_machine.host_time_ms == batch_machine.host_time_ms
    assert loop_machine.event_count == batch_machine.event_count
    assert loop_events == batch_events
    for loop_device, batch_device in zip(loop_machine.devices, batch_machine.devices):
        assert (
            loop_device.default_stream.timeline.intervals
            == batch_device.default_stream.timeline.intervals
        )
    assert loop_machine.device_flops_totals() == batch_machine.device_flops_totals()


@pytest.mark.parametrize("seed", [21, 22])
def test_disabling_event_recording_changes_nothing_but_the_log(seed):
    recorded = Machine.from_spec("2xA100-pcie")
    silent = Machine(
        cpu_spec=recorded.cpu.spec,
        gpu_spec=MACHINE_SPECS["2xA100-pcie"].gpu,
        link_spec=MACHINE_SPECS["2xA100-pcie"].host_link,
        num_gpus=2,
        record_events=False,
    )
    events = drive_random_program(recorded, seed)
    silent_events = drive_random_program(silent, seed)
    assert silent_events == []
    assert len(silent.events) == 0
    assert silent.event_count == recorded.event_count == len(events)
    assert silent.host_time_ms == recorded.host_time_ms
    for noisy, quiet in zip(recorded.devices, silent.devices):
        assert noisy.busy_ms() == quiet.busy_ms()
        assert noisy.default_stream.timeline.intervals == (quiet.default_stream.timeline.intervals)


@pytest.mark.parametrize("seed", [31, 32, 33])
def test_sampler_matches_reference_slow_path(seed):
    rng = np.random.default_rng(seed)
    stream = random_stream(rng)
    fast = TemporalNeighborSampler(stream, uniform=True, seed=seed)
    reference_adjacency = reference_build_index(stream)
    # Identical index: per-node arrays byte for byte.
    assert len(fast._adjacency) == len(reference_adjacency)
    for fast_entry, ref_entry in zip(fast._adjacency, reference_adjacency):
        for fast_array, ref_array in zip(fast_entry, ref_entry):
            assert fast_array.dtype == ref_array.dtype
            assert np.array_equal(fast_array, ref_array)
    # Identical samples and RNG stream over a random query workload.
    reference_rng = np.random.default_rng(seed)
    for k in (3, 7):
        nodes = rng.integers(0, stream.num_nodes, size=40)
        times = rng.uniform(0.0, 1200.0, size=40)
        sample = fast.sample(nodes, times, k)
        ids, ntimes, events, mask, _ = reference_sample(
            reference_adjacency, reference_rng, True, nodes, times, k
        )
        assert np.array_equal(sample.neighbor_ids, ids)
        assert np.array_equal(sample.neighbor_times, ntimes)
        assert np.array_equal(sample.event_indices, events)
        assert np.array_equal(sample.mask, mask)
    # Both generators must have consumed identical draws.
    assert fast._rng.integers(0, 2**31) == reference_rng.integers(0, 2**31)


def test_most_recent_sampling_matches_reference():
    rng = np.random.default_rng(7)
    stream = random_stream(rng)
    fast = TemporalNeighborSampler(stream, uniform=False, seed=7)
    reference_adjacency = reference_build_index(stream)
    reference_rng = np.random.default_rng(7)
    nodes = rng.integers(0, stream.num_nodes, size=60)
    times = rng.uniform(0.0, 1200.0, size=60)
    sample = fast.sample(nodes, times, 5)
    ids, ntimes, events, mask, _ = reference_sample(
        reference_adjacency, reference_rng, False, nodes, times, 5
    )
    assert np.array_equal(sample.neighbor_ids, ids)
    assert np.array_equal(sample.neighbor_times, ntimes)
    assert np.array_equal(sample.event_indices, events)
    assert np.array_equal(sample.mask, mask)
