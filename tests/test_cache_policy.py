"""Eviction-policy unit tests: victim order under forced pressure."""

import pytest

from repro.cache import (
    DegreeWeightedPolicy,
    LFUPolicy,
    LRUPolicy,
    available_eviction_policies,
    make_eviction_policy,
)


def test_registry_lists_the_three_policies():
    assert set(available_eviction_policies()) == {"lru", "lfu", "degree"}
    for name in available_eviction_policies():
        assert make_eviction_policy(name).name == name
    with pytest.raises(KeyError, match="unknown eviction policy"):
        make_eviction_policy("clock")


def test_lru_evicts_least_recently_served():
    policy = LRUPolicy()
    for key in ("a", "b", "c"):
        policy.on_insert(key)
    assert policy.victim() == "a"
    policy.on_access("a")  # a is now the warmest entry
    assert policy.victim() == "b"
    policy.on_remove("b")
    assert policy.victim() == "c"
    assert len(policy) == 2


def test_lfu_evicts_least_frequently_served_with_oldest_tiebreak():
    policy = LFUPolicy()
    for key in ("a", "b", "c"):
        policy.on_insert(key)
    # Equal counts: the oldest insertion loses.
    assert policy.victim() == "a"
    policy.on_access("a")
    policy.on_access("a")
    policy.on_access("b")
    # counts: a=2, b=1, c=0
    assert policy.victim() == "c"
    policy.on_remove("c")
    assert policy.victim() == "b"


def test_lfu_reinsert_resets_the_count():
    policy = LFUPolicy()
    policy.on_insert("a")
    policy.on_access("a")
    policy.on_insert("b")
    assert policy.victim() == "b"
    # Overwriting a starts it cold again, and it is now the youngest.
    policy.on_insert("a")
    assert policy.victim() == "b"
    policy.on_access("b")
    assert policy.victim() == "a"


def test_degree_weighted_evicts_smallest_degree_first():
    policy = DegreeWeightedPolicy()
    policy.on_insert("hub", weight=500.0)
    policy.on_insert("leaf", weight=1.0)
    policy.on_insert("mid", weight=40.0)
    assert policy.victim() == "leaf"
    policy.on_remove("leaf")
    assert policy.victim() == "mid"
    # Accesses do not promote entries: degree is a static recompute-cost proxy.
    policy.on_access("mid")
    policy.on_access("mid")
    assert policy.victim() == "mid"


def test_degree_ties_evict_the_oldest_insertion():
    policy = DegreeWeightedPolicy()
    policy.on_insert("first", weight=7.0)
    policy.on_insert("second", weight=7.0)
    assert policy.victim() == "first"


def test_empty_policies_refuse_to_pick_victims():
    for name in available_eviction_policies():
        policy = make_eviction_policy(name)
        with pytest.raises(KeyError):
            policy.victim()
        policy.on_insert("x", weight=1.0)
        policy.on_remove("x")
        with pytest.raises(KeyError):
            policy.victim()
