"""``Tensor.to`` transfer and memory accounting."""

import numpy as np
import pytest

from repro.hw import TRANSFER, Machine
from repro.tensor import Tensor


@pytest.fixture
def machine():
    m = Machine.cpu_gpu()
    m.initialize_gpu(model_bytes=0)
    return m


def transfers(machine):
    return [e for e in machine.events if e.kind == TRANSFER]


class TestTransferAccounting:
    def test_to_emits_transfer_with_float32_bytes(self, machine):
        with machine.activate():
            x = Tensor(np.ones((100, 7), dtype=np.float32), machine.cpu)
            x.to(machine.gpu, name="upload")
        recorded = transfers(machine)
        assert len(recorded) == 1
        assert recorded[0].bytes == 100 * 7 * 4
        assert recorded[0].src == machine.cpu.name
        assert recorded[0].dst == machine.gpu.name

    def test_blocking_transfer_advances_host_to_completion(self, machine):
        with machine.activate():
            x = Tensor(np.ones((512, 512), dtype=np.float32), machine.cpu)
            x.to(machine.gpu)
        assert machine.host_time_ms == pytest.approx(transfers(machine)[-1].end_ms)

    def test_same_device_move_is_identity(self, machine):
        with machine.activate():
            x = Tensor(np.ones(4, dtype=np.float32), machine.cpu)
            assert x.to(machine.cpu) is x
        assert transfers(machine) == []

    def test_unrecorded_move_still_tracks_destination_memory(self, machine):
        with machine.activate():
            x = Tensor(np.ones((10, 10), dtype=np.float32), machine.cpu)
            before = machine.gpu.memory.current_bytes
            moved = x.to(machine.gpu, record=False)
        assert transfers(machine) == []
        assert moved.is_tracked
        assert machine.gpu.memory.current_bytes == before + moved.nbytes

    def test_track_memory_opt_out(self, machine):
        with machine.activate():
            x = Tensor(np.ones((10, 10), dtype=np.float32), machine.cpu)
            before = machine.gpu.memory.current_bytes
            moved = x.to(machine.gpu, track_memory=False)
        assert len(transfers(machine)) == 1
        assert not moved.is_tracked
        assert machine.gpu.memory.current_bytes == before


class TestNonBlockingTransfers:
    def test_non_blocking_copy_does_not_block_host(self, machine):
        with machine.activate():
            x = Tensor(np.ones((512, 512), dtype=np.float32), machine.cpu)
            before = machine.host_time_ms
            x.to(machine.gpu, non_blocking=True)
        copy = transfers(machine)[-1]
        overhead_ms = machine.link.spec.host_overhead_us * 1e-3
        assert machine.host_time_ms == pytest.approx(before + overhead_ms)
        assert copy.end_ms > machine.host_time_ms
        assert copy.stream == "copy"

    def test_non_blocking_copies_serialize_on_copy_stream(self, machine):
        with machine.activate():
            x = Tensor(np.ones((256, 256), dtype=np.float32), machine.cpu)
            x.to(machine.gpu, non_blocking=True)
            y = Tensor(np.ones((256, 256), dtype=np.float32), machine.cpu)
            y.to(machine.gpu, non_blocking=True)
        first, second = transfers(machine)[-2:]
        assert second.start_ms >= first.end_ms

    def test_synchronize_drains_copy_stream(self, machine):
        with machine.activate():
            x = Tensor(np.ones((512, 512), dtype=np.float32), machine.cpu)
            x.to(machine.gpu, non_blocking=True)
            machine.synchronize()
        assert machine.host_time_ms >= transfers(machine)[-1].end_ms
