"""Model-layer cache tests: golden byte-equivalence and invalidation.

The load-bearing guarantee: with a cache attached at staleness 0, every
model output (and the sampler's RNG stream) is byte-identical to uncached
execution -- the cache degenerates to write-through bookkeeping.  At nonzero
staleness TGAT outputs are approximations (that is the point), while TGN
memory-row hits never change numerics at all (values are exact copies).
"""

import numpy as np
import pytest

from repro.cache import ModelCache, make_model_cache
from repro.datasets import load
from repro.hw import Machine
from repro.models.jodie import JODIE, JODIEConfig
from repro.models.ldg import LDG
from repro.models.tgat import TGAT, TGATConfig
from repro.models.tgn import TGN, TGNConfig


@pytest.fixture(scope="module")
def dataset():
    return load("wikipedia", scale="tiny")


def run_tgat(dataset, cache_kwargs, batches=4, **config_kwargs):
    config = TGATConfig(num_neighbors=5, batch_size=32, seed=0, **config_kwargs)
    machine = Machine.cpu_gpu()
    with machine.activate():
        model = TGAT(machine, dataset, config)
        if cache_kwargs is not None:
            make_model_cache(model, **cache_kwargs)
        outputs = []
        for index, batch in enumerate(model.iteration_batches()):
            if index == 0:
                model.warm_up(batch)
            outputs.append(model.inference_iteration(batch).data.copy())
            if index + 1 >= batches:
                break
    return (outputs, model)


def run_tgn(dataset, cache_kwargs, batches=3):
    machine = Machine.cpu_gpu()
    with machine.activate():
        model = TGN(machine, dataset, TGNConfig(num_neighbors=5, batch_size=32, seed=1))
        if cache_kwargs is not None:
            make_model_cache(model, **cache_kwargs)
        outputs = []
        for index, batch in enumerate(model.iteration_batches()):
            if index == 0:
                model.warm_up(batch)
            outputs.append(model.inference_iteration(batch).data.copy())
            if index + 1 >= batches:
                break
    return (outputs, model)


def test_tgat_staleness_zero_is_byte_identical(dataset):
    """Golden equivalence: cache on at staleness 0 == cache off, bytewise."""
    base_outputs, base_model = run_tgat(dataset, None)
    for policy in ("lru", "lfu", "degree"):
        cached_outputs, cached_model = run_tgat(
            dataset, dict(policy=policy, capacity_mb=4.0, staleness_ms=0.0)
        )
        for base, cached in zip(base_outputs, cached_outputs):
            assert np.array_equal(base, cached)
        # The sampler consumed exactly the same draw sequence.
        assert (
            base_model.sampler._rng.bit_generator.state
            == cached_model.sampler._rng.bit_generator.state
        )
        stats = cached_model.cache_stats()
        assert stats["hits"] == 0
        assert stats["lookups"] > 0


def test_tgat_overlap_protocol_staleness_zero_is_byte_identical(dataset):
    """prepare/compute with a CachedPlan reproduces the plain plan bytewise."""
    machine_a = Machine.cpu_gpu()
    machine_b = Machine.cpu_gpu()
    config = TGATConfig(num_neighbors=5, batch_size=32, seed=0)
    with machine_a.activate():
        uncached = TGAT(machine_a, dataset, config)
        batch = next(uncached.iteration_batches())
        uncached.warm_up(batch)
        plain = uncached.compute_iteration(batch, uncached.prepare_iteration(batch))
    with machine_b.activate():
        cached = TGAT(machine_b, dataset, config)
        make_model_cache(cached, policy="lru", capacity_mb=4.0, staleness_ms=0.0)
        cached.warm_up(batch)
        plan = cached.prepare_iteration(batch)
        assert plan.num_hits == 0
        result = cached.compute_iteration(batch, plan)
    assert np.array_equal(plain.data, result.data)


def test_tgat_warm_cache_hits_and_skips_sampling(dataset):
    outputs, model = run_tgat(
        dataset, dict(policy="lru", capacity_mb=16.0, staleness_ms=1e12)
    )
    stats = model.cache_stats()
    assert stats["hits"] > 0
    assert 0.0 < stats["hit_rate"] < 1.0
    assert stats["by_kind"]["embedding"]["hits"] > 0
    assert stats["by_kind"]["sample"]["hits"] > 0
    # Outputs stay probability-shaped even on the approximate path.
    for out in outputs:
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


def test_tgat_cached_run_is_seed_reproducible(dataset):
    first, model_a = run_tgat(
        dataset, dict(policy="degree", capacity_mb=8.0, staleness_ms=1e6)
    )
    second, model_b = run_tgat(
        dataset, dict(policy="degree", capacity_mb=8.0, staleness_ms=1e6)
    )
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    assert model_a.cache_stats() == model_b.cache_stats()
    assert model_a.machine.host_time_ms == model_b.machine.host_time_ms


def test_tgn_cached_numerics_identical_at_any_staleness(dataset):
    """TGN memory-row hits skip transfers only: values are exact copies."""
    base_outputs, _ = run_tgn(dataset, None)
    for staleness in (0.0, 1e12):
        cached_outputs, model = run_tgn(
            dataset, dict(policy="lru", capacity_mb=8.0, staleness_ms=staleness)
        )
        for base, cached in zip(base_outputs, cached_outputs):
            assert np.array_equal(base, cached)
        stats = model.cache_stats()
        if staleness > 0:
            assert stats["by_kind"]["memory"]["hits"] > 0


def test_tgn_warm_cache_shrinks_memory_row_transfers(dataset):
    def memory_row_bytes(machine):
        return sum(
            event.bytes
            for event in machine.events
            if event.kind == "transfer"
            and event.name in ("src_memory", "dst_memory", "neighbor_memory")
        )

    _, uncached = run_tgn(dataset, None)
    _, cached = run_tgn(dataset, dict(policy="lru", capacity_mb=32.0, staleness_ms=1e12))
    # Memory-row hits are served from the device-resident pool, so the PCIe
    # traffic for memory rows strictly shrinks (by the hit rows' bytes).
    hit_bytes = cached.cache.memory.stats.hits * cached._memory_row_bytes
    assert hit_bytes > 0
    assert memory_row_bytes(cached.machine) == memory_row_bytes(uncached.machine) - hit_bytes


def run_jodie(dataset, cache_kwargs, batches=12):
    machine = Machine.cpu_gpu()
    with machine.activate():
        model = JODIE(machine, dataset, JODIEConfig(embedding_dim=32, seed=2))
        if cache_kwargs is not None:
            make_model_cache(model, **cache_kwargs)
        outputs = []
        for index, batch in enumerate(model.iteration_batches()):
            if index == 0:
                model.warm_up(batch)
            outputs.append(model.inference_iteration(batch).data.copy())
            if index + 1 >= batches:
                break
    return (outputs, model)


def test_jodie_cached_numerics_identical_at_any_staleness(dataset):
    """JODIE state-row hits skip transfers only: values are exact copies."""
    base_outputs, _ = run_jodie(dataset, None)
    for staleness in (0.0, 1e12):
        cached_outputs, model = run_jodie(
            dataset, dict(policy="lru", capacity_mb=8.0, staleness_ms=staleness)
        )
        for base, cached in zip(base_outputs, cached_outputs):
            assert np.array_equal(base, cached)
        stats = model.cache_stats()
        assert stats["lookups"] > 0
        if staleness > 0:
            assert stats["by_kind"]["memory"]["hits"] > 0
        else:
            assert stats["hits"] == 0  # staleness 0 admits no hit at all


def test_jodie_staleness_zero_matches_uncached_timeline(dataset):
    """At staleness 0 the cached machine replays the uncached transfer
    traffic exactly: every row misses, so byte totals match."""

    def state_row_bytes(machine):
        return sum(
            event.bytes
            for event in machine.events
            if event.kind == "transfer"
            and event.name in ("user_embeddings", "item_embeddings")
        )

    _, uncached = run_jodie(dataset, None)
    _, cold = run_jodie(dataset, dict(policy="lru", capacity_mb=8.0, staleness_ms=0.0))
    assert state_row_bytes(cold.machine) == state_row_bytes(uncached.machine)


def test_jodie_warm_cache_shrinks_state_row_transfers(dataset):
    def state_row_bytes(machine):
        return sum(
            event.bytes
            for event in machine.events
            if event.kind == "transfer"
            and event.name in ("user_embeddings", "item_embeddings")
        )

    _, uncached = run_jodie(dataset, None)
    _, cached = run_jodie(dataset, dict(policy="lru", capacity_mb=32.0, staleness_ms=1e12))
    hit_bytes = cached.cache.memory.stats.hits * cached._state_row_bytes
    assert hit_bytes > 0
    assert state_row_bytes(cached.machine) == state_row_bytes(uncached.machine) - hit_bytes


def test_jodie_users_and_items_share_the_store_without_collisions(dataset):
    """Items are keyed by their global (num_users-offset) id, so a user and
    an item with the same raw index occupy distinct entries."""
    _, model = run_jodie(dataset, dict(policy="lru", capacity_mb=32.0, staleness_ms=1e12))
    store = model.cache.memory
    user_keys = {k for k in store._entries if k < dataset.num_users}
    item_keys = {k for k in store._entries if k >= dataset.num_users}
    assert user_keys and item_keys


def test_cache_flush_forces_cold_misses(dataset):
    """flush() (the autoscaler's spin-down hook) drops every entry: the next
    t-batch re-misses rows that were registered before the flush."""
    machine = Machine.cpu_gpu()
    with machine.activate():
        model = JODIE(machine, dataset, JODIEConfig(embedding_dim=32, seed=2))
        make_model_cache(model, policy="lru", capacity_mb=32.0, staleness_ms=1e12)
        batches = []
        for index, batch in enumerate(model.iteration_batches()):
            if index == 0:
                model.warm_up(batch)
            model.inference_iteration(batch)
            batches.append(batch)
            if index + 1 >= 4:
                break
        store = model.cache.memory
        assert len(store._entries) > 0
        dropped = model.cache.flush()
        assert dropped == store.stats.invalidations >= 1
        assert len(store._entries) == 0
        hits_before = store.stats.hits
        model.inference_iteration(batches[-1])
        # The replayed batch's rows were all flushed: no hit survives.
        assert store.stats.hits == hits_before


def test_event_invalidation_drops_touched_entries(dataset):
    _, model = run_tgat(
        dataset, dict(policy="lru", capacity_mb=16.0, staleness_ms=1e12), batches=1
    )
    cache = model.cache
    batch = next(model.iteration_batches())
    touched = np.unique(np.concatenate([batch.src, batch.dst]))
    store = cache.embeddings
    with model.machine.activate():
        # Freshly inserted entries for the batch's own nodes survive their
        # batch (store-after-invalidate), so the touched nodes are present...
        present = [node for node in touched.tolist() if node in store]
        assert present
        before = cache.stats()["invalidations"]
        cache.observe_events(batch)
        # ...and an invalidation sweep for the same events removes them.
        assert all(node not in store for node in touched.tolist())
        assert cache.stats()["invalidations"] > before


def test_attach_cache_refuses_non_caching_models(dataset):
    machine = Machine.cpu_gpu()
    with machine.activate():
        model = LDG(machine, dataset)
    with pytest.raises(TypeError, match="does not support request caching"):
        make_model_cache(model)
    assert model.cache_stats() is None


def test_model_cache_rejects_unknown_kinds_and_bad_budgets():
    machine = Machine.cpu_gpu()
    with pytest.raises(ValueError, match="unknown cache kind"):
        ModelCache(machine, machine.gpu, kinds=("weights",))
    with pytest.raises(ValueError, match="at least one entry kind"):
        ModelCache(machine, machine.gpu, kinds=())
    with pytest.raises(ValueError, match="capacity"):
        ModelCache(machine, machine.gpu, kinds=("embedding",), capacity_mb=0.0)


def test_degree_policy_is_wired_to_the_sampler(dataset):
    _, model = run_tgat(
        dataset, dict(policy="degree", capacity_mb=8.0, staleness_ms=1e6), batches=1
    )
    store = model.cache.embeddings
    assert store.weight_of == model.sampler.total_degree
