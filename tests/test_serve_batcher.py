"""Dynamic batcher + scheduler policy edge cases (no simulator involved)."""

import pytest

from repro.serve import (
    DynamicBatcher,
    FIFOPolicy,
    Request,
    ServiceTimeEstimator,
    SLOAwarePolicy,
    TimeoutBatchingPolicy,
    make_policy,
)


def _request(request_id, arrival_ms, slo_ms=None):
    return Request(request_id=request_id, arrival_ms=arrival_ms, payload=None, slo_ms=slo_ms)


# -- empty queue ----------------------------------------------------------------


@pytest.mark.parametrize("policy_name", ["fifo", "timeout", "slo"])
def test_empty_queue_tick_yields_no_batch(policy_name):
    batcher = DynamicBatcher(make_policy(policy_name))
    assert len(batcher) == 0
    assert batcher.poll(123.0) == []
    assert batcher.next_deadline_ms(123.0) is None
    assert batcher.oldest is None


# -- FIFO -----------------------------------------------------------------------


def test_fifo_dispatches_immediately_in_arrival_order():
    batcher = DynamicBatcher(FIFOPolicy(max_batch_size=4))
    for rid in range(3):
        batcher.enqueue(_request(rid, arrival_ms=float(rid)))
    batch = batcher.poll(10.0)
    assert [r.request_id for r in batch] == [0, 1, 2]
    assert len(batcher) == 0


def test_fifo_caps_at_max_batch_size():
    batcher = DynamicBatcher(FIFOPolicy(max_batch_size=2))
    for rid in range(5):
        batcher.enqueue(_request(rid, arrival_ms=0.0))
    assert [r.request_id for r in batcher.poll(1.0)] == [0, 1]
    assert [r.request_id for r in batcher.poll(1.0)] == [2, 3]
    assert [r.request_id for r in batcher.poll(1.0)] == [4]


# -- timeout batching ---------------------------------------------------------------


def test_timeout_waits_then_fires_with_partial_batch():
    policy = TimeoutBatchingPolicy(max_batch_size=8, batch_timeout_ms=5.0)
    batcher = DynamicBatcher(policy)
    batcher.enqueue(_request(0, arrival_ms=10.0))
    batcher.enqueue(_request(1, arrival_ms=12.0))
    assert batcher.poll(11.0) == []  # still accumulating
    assert batcher.next_deadline_ms(11.0) == pytest.approx(15.0)
    batch = batcher.poll(15.0)  # oldest waited exactly the timeout
    assert [r.request_id for r in batch] == [0, 1]


def test_timeout_fires_immediately_when_batch_fills_exactly():
    policy = TimeoutBatchingPolicy(max_batch_size=3, batch_timeout_ms=1000.0)
    batcher = DynamicBatcher(policy)
    for rid in range(3):
        batcher.enqueue(_request(rid, arrival_ms=0.0))
    batch = batcher.poll(0.0)  # no timeout elapsed, but the batch is full
    assert len(batch) == 3
    assert len(batcher) == 0


def test_timeout_keeps_excess_beyond_max_batch_size():
    policy = TimeoutBatchingPolicy(max_batch_size=3, batch_timeout_ms=1000.0)
    batcher = DynamicBatcher(policy)
    for rid in range(4):
        batcher.enqueue(_request(rid, arrival_ms=0.0))
    assert len(batcher.poll(0.0)) == 3
    assert len(batcher) == 1
    assert batcher.poll(0.5) == []  # the leftover waits for its own timeout


# -- SLO-aware shrinking ----------------------------------------------------------


def test_slo_policy_behaves_like_timeout_before_any_observation():
    policy = SLOAwarePolicy(max_batch_size=4, batch_timeout_ms=5.0, slo_ms=20.0)
    queue = [_request(0, arrival_ms=0.0, slo_ms=20.0)]
    assert policy.select_batch_size(queue, 1.0) == 0
    assert policy.select_batch_size(queue, 5.0) == 1  # plain timeout fires


def test_slo_policy_shrinks_batch_under_deadline_pressure():
    estimator = ServiceTimeEstimator()
    estimator.observe(batch_size=1, service_ms=4.0)  # 4 ms per request
    policy = SLOAwarePolicy(
        max_batch_size=8, batch_timeout_ms=100.0, slo_ms=20.0,
        safety_factor=1.0, estimator=estimator,
    )
    queue = [_request(rid, arrival_ms=0.0, slo_ms=20.0) for rid in range(8)]
    # Plenty of slack at t=0 for a full batch (8 * 4 = 32 > 20? no!) --
    # slack 20 < est(8) 32, so pressure applies immediately: only
    # floor(20 / 4) = 5 requests fit before the oldest deadline.
    assert policy.select_batch_size(queue, 0.0) == 5
    # Closer to the deadline the batch shrinks further.
    assert policy.select_batch_size(queue, 10.0) == 2
    # Once even one request cannot make it (slack 3 < 4), shrinking is
    # pointless: fall back to throughput batching (full batch available).
    assert policy.select_batch_size(queue, 17.0) == 8


def test_slo_policy_with_comfortable_slack_keeps_batching():
    estimator = ServiceTimeEstimator()
    estimator.observe(batch_size=1, service_ms=1.0)
    policy = SLOAwarePolicy(
        max_batch_size=4, batch_timeout_ms=6.0, slo_ms=100.0,
        safety_factor=1.0, estimator=estimator,
    )
    queue = [_request(0, arrival_ms=0.0, slo_ms=100.0)]
    # est(1) = 1 ms << 100 ms slack: defer to timeout batching (not full yet).
    assert policy.select_batch_size(queue, 1.0) == 0
    queue = [_request(rid, arrival_ms=0.0, slo_ms=100.0) for rid in range(4)]
    assert policy.select_batch_size(queue, 0.0) == 4  # full batch, no shrink


def test_slo_policy_does_not_shed_when_deadline_is_hopeless():
    """A missed deadline must not trigger a batch-of-one death spiral."""
    estimator = ServiceTimeEstimator()
    estimator.observe(batch_size=1, service_ms=4.0)
    policy = SLOAwarePolicy(
        max_batch_size=8, batch_timeout_ms=5.0, slo_ms=20.0,
        safety_factor=1.0, estimator=estimator,
    )
    # The oldest request is already past its deadline: even a batch of one
    # cannot make it, so the policy batches for throughput instead.
    queue = [_request(rid, arrival_ms=0.0, slo_ms=20.0) for rid in range(8)]
    assert policy.select_batch_size(queue, 25.0) == 8


def test_slo_policy_deadline_tracks_pressure_start():
    estimator = ServiceTimeEstimator()
    estimator.observe(batch_size=2, service_ms=4.0)  # 2 ms per request
    policy = SLOAwarePolicy(
        max_batch_size=4, batch_timeout_ms=50.0, slo_ms=30.0,
        safety_factor=1.0, estimator=estimator,
    )
    queue = [_request(0, arrival_ms=0.0, slo_ms=30.0)]
    # Pressure starts when slack equals est(1) = 2 ms -> t = 28; the timeout
    # deadline (t = 50) is later, so the policy wants waking at t = 28.
    assert policy.next_deadline_ms(queue, 0.0) == pytest.approx(28.0)


def test_service_time_estimator_smooths_observations():
    estimator = ServiceTimeEstimator(alpha=0.5)
    assert estimator.estimate(4) == 0.0
    estimator.observe(batch_size=2, service_ms=8.0)   # 4 ms/request
    assert estimator.per_request_ms == pytest.approx(4.0)
    estimator.observe(batch_size=4, service_ms=8.0)   # 2 ms/request sample
    assert estimator.per_request_ms == pytest.approx(3.0)
    assert estimator.estimate(4) == pytest.approx(12.0)


# -- force drain -------------------------------------------------------------------


def test_force_pops_up_to_the_policy_cap():
    batcher = DynamicBatcher(TimeoutBatchingPolicy(max_batch_size=3, batch_timeout_ms=1e9))
    for rid in range(5):
        batcher.enqueue(_request(rid, arrival_ms=0.0))
    assert [r.request_id for r in batcher.force(0.0)] == [0, 1, 2]
    assert [r.request_id for r in batcher.force(0.0)] == [3, 4]
    assert batcher.force(0.0) == []
