"""Dynamic batcher + scheduler policy edge cases (no simulator involved)."""

import pytest

from repro.serve import (
    DynamicBatcher,
    FIFOPolicy,
    Request,
    ServiceTimeEstimator,
    SLOAwarePolicy,
    TimeoutBatchingPolicy,
    make_policy,
)


def _request(request_id, arrival_ms, slo_ms=None):
    return Request(request_id=request_id, arrival_ms=arrival_ms, payload=None, slo_ms=slo_ms)


# -- empty queue ----------------------------------------------------------------


@pytest.mark.parametrize("policy_name", ["fifo", "timeout", "slo"])
def test_empty_queue_tick_yields_no_batch(policy_name):
    batcher = DynamicBatcher(make_policy(policy_name))
    assert len(batcher) == 0
    assert batcher.poll(123.0) == []
    assert batcher.next_deadline_ms(123.0) is None
    assert batcher.oldest is None


# -- FIFO -----------------------------------------------------------------------


def test_fifo_dispatches_immediately_in_arrival_order():
    batcher = DynamicBatcher(FIFOPolicy(max_batch_size=4))
    for rid in range(3):
        batcher.enqueue(_request(rid, arrival_ms=float(rid)))
    batch = batcher.poll(10.0)
    assert [r.request_id for r in batch] == [0, 1, 2]
    assert len(batcher) == 0


def test_fifo_caps_at_max_batch_size():
    batcher = DynamicBatcher(FIFOPolicy(max_batch_size=2))
    for rid in range(5):
        batcher.enqueue(_request(rid, arrival_ms=0.0))
    assert [r.request_id for r in batcher.poll(1.0)] == [0, 1]
    assert [r.request_id for r in batcher.poll(1.0)] == [2, 3]
    assert [r.request_id for r in batcher.poll(1.0)] == [4]


# -- timeout batching ---------------------------------------------------------------


def test_timeout_waits_then_fires_with_partial_batch():
    policy = TimeoutBatchingPolicy(max_batch_size=8, batch_timeout_ms=5.0)
    batcher = DynamicBatcher(policy)
    batcher.enqueue(_request(0, arrival_ms=10.0))
    batcher.enqueue(_request(1, arrival_ms=12.0))
    assert batcher.poll(11.0) == []  # still accumulating
    assert batcher.next_deadline_ms(11.0) == pytest.approx(15.0)
    batch = batcher.poll(15.0)  # oldest waited exactly the timeout
    assert [r.request_id for r in batch] == [0, 1]


def test_timeout_fires_immediately_when_batch_fills_exactly():
    policy = TimeoutBatchingPolicy(max_batch_size=3, batch_timeout_ms=1000.0)
    batcher = DynamicBatcher(policy)
    for rid in range(3):
        batcher.enqueue(_request(rid, arrival_ms=0.0))
    batch = batcher.poll(0.0)  # no timeout elapsed, but the batch is full
    assert len(batch) == 3
    assert len(batcher) == 0


def test_timeout_keeps_excess_beyond_max_batch_size():
    policy = TimeoutBatchingPolicy(max_batch_size=3, batch_timeout_ms=1000.0)
    batcher = DynamicBatcher(policy)
    for rid in range(4):
        batcher.enqueue(_request(rid, arrival_ms=0.0))
    assert len(batcher.poll(0.0)) == 3
    assert len(batcher) == 1
    assert batcher.poll(0.5) == []  # the leftover waits for its own timeout


# -- SLO-aware shrinking ----------------------------------------------------------


def test_slo_policy_behaves_like_timeout_before_any_observation():
    policy = SLOAwarePolicy(max_batch_size=4, batch_timeout_ms=5.0, slo_ms=20.0)
    queue = [_request(0, arrival_ms=0.0, slo_ms=20.0)]
    assert policy.select_batch_size(queue, 1.0) == 0
    assert policy.select_batch_size(queue, 5.0) == 1  # plain timeout fires


def test_slo_policy_shrinks_batch_under_deadline_pressure():
    estimator = ServiceTimeEstimator()
    estimator.observe(batch_size=1, service_ms=4.0)  # 4 ms per request
    policy = SLOAwarePolicy(
        max_batch_size=8, batch_timeout_ms=100.0, slo_ms=20.0,
        safety_factor=1.0, estimator=estimator,
    )
    queue = [_request(rid, arrival_ms=0.0, slo_ms=20.0) for rid in range(8)]
    # Plenty of slack at t=0 for a full batch (8 * 4 = 32 > 20? no!) --
    # slack 20 < est(8) 32, so pressure applies immediately: only
    # floor(20 / 4) = 5 requests fit before the oldest deadline.
    assert policy.select_batch_size(queue, 0.0) == 5
    # Closer to the deadline the batch shrinks further.
    assert policy.select_batch_size(queue, 10.0) == 2
    # Once even one request cannot make it (slack 3 < 4), shrinking is
    # pointless: fall back to throughput batching (full batch available).
    assert policy.select_batch_size(queue, 17.0) == 8


def test_slo_policy_with_comfortable_slack_keeps_batching():
    estimator = ServiceTimeEstimator()
    estimator.observe(batch_size=1, service_ms=1.0)
    policy = SLOAwarePolicy(
        max_batch_size=4, batch_timeout_ms=6.0, slo_ms=100.0,
        safety_factor=1.0, estimator=estimator,
    )
    queue = [_request(0, arrival_ms=0.0, slo_ms=100.0)]
    # est(1) = 1 ms << 100 ms slack: defer to timeout batching (not full yet).
    assert policy.select_batch_size(queue, 1.0) == 0
    queue = [_request(rid, arrival_ms=0.0, slo_ms=100.0) for rid in range(4)]
    assert policy.select_batch_size(queue, 0.0) == 4  # full batch, no shrink


def test_slo_policy_does_not_shed_when_deadline_is_hopeless():
    """A missed deadline must not trigger a batch-of-one death spiral."""
    estimator = ServiceTimeEstimator()
    estimator.observe(batch_size=1, service_ms=4.0)
    policy = SLOAwarePolicy(
        max_batch_size=8, batch_timeout_ms=5.0, slo_ms=20.0,
        safety_factor=1.0, estimator=estimator,
    )
    # The oldest request is already past its deadline: even a batch of one
    # cannot make it, so the policy batches for throughput instead.
    queue = [_request(rid, arrival_ms=0.0, slo_ms=20.0) for rid in range(8)]
    assert policy.select_batch_size(queue, 25.0) == 8


def test_slo_policy_deadline_tracks_pressure_start():
    estimator = ServiceTimeEstimator()
    estimator.observe(batch_size=2, service_ms=4.0)  # 2 ms per request
    policy = SLOAwarePolicy(
        max_batch_size=4, batch_timeout_ms=50.0, slo_ms=30.0,
        safety_factor=1.0, estimator=estimator,
    )
    queue = [_request(0, arrival_ms=0.0, slo_ms=30.0)]
    # Pressure starts when slack equals est(1) = 2 ms -> t = 28; the timeout
    # deadline (t = 50) is later, so the policy wants waking at t = 28.
    assert policy.next_deadline_ms(queue, 0.0) == pytest.approx(28.0)


def test_service_time_estimator_smooths_observations():
    estimator = ServiceTimeEstimator(alpha=0.5)
    assert estimator.estimate(4) == 0.0
    estimator.observe(batch_size=2, service_ms=8.0)   # 4 ms/request
    assert estimator.per_request_ms == pytest.approx(4.0)
    estimator.observe(batch_size=4, service_ms=8.0)   # 2 ms/request sample
    assert estimator.per_request_ms == pytest.approx(3.0)
    assert estimator.estimate(4) == pytest.approx(12.0)


# -- force drain -------------------------------------------------------------------


def test_force_pops_up_to_the_policy_cap():
    batcher = DynamicBatcher(TimeoutBatchingPolicy(max_batch_size=3, batch_timeout_ms=1e9))
    for rid in range(5):
        batcher.enqueue(_request(rid, arrival_ms=0.0))
    assert [r.request_id for r in batcher.force(0.0)] == [0, 1, 2]
    assert [r.request_id for r in batcher.force(0.0)] == [3, 4]
    assert batcher.force(0.0) == []


# -- wake-up / dispatch consistency (PR 8 regressions) ------------------------------


@pytest.mark.parametrize("per_request_ms,queued", [(0.001, 3), (0.001, 4), (0.002, 2)])
def test_slo_wakeup_dispatches_the_batch_it_was_scheduled_for(per_request_ms, queued):
    """The wake-up must not strand queue tail via a float-floor artifact.

    ``next_deadline_ms`` schedules the wake-up at the pressure point of the
    batch it expects to dispatch.  Before the fix, ``slack // cost`` at that
    exact instant could floor to ``n - 1`` (float rounding), dispatching a
    smaller batch and leaving the tail with zero slack -- a guaranteed SLO
    miss the policy itself caused.
    """
    policy = SLOAwarePolicy(
        max_batch_size=8, batch_timeout_ms=50.0, slo_ms=30.0, safety_factor=1.2
    )
    policy.estimator.observe(1, per_request_ms)
    queue = [_request(rid, arrival_ms=0.0, slo_ms=30.0) for rid in range(queued)]
    assert policy.select_batch_size(queue, 0.0) == 0  # comfortable: waits
    wake = policy.next_deadline_ms(queue, 0.0)
    assert wake is not None and wake > 0.0
    selected = policy.select_batch_size(queue, wake)
    assert selected == queued
    estimated_done = wake + policy.estimator.estimate(selected) * policy.safety_factor
    assert estimated_done <= 30.0 + 1e-6


@pytest.mark.parametrize("per_request_ms,queued", [(0.001, 2), (0.001, 5), (0.002, 3)])
def test_slo_wakeup_does_not_oscillate_at_the_pressure_boundary(per_request_ms, queued):
    """Waking at the scheduled instant must trigger a dispatch, not a no-op.

    Before the fix, float error could leave ``slack`` marginally above the
    pressure threshold at the scheduled wake-up, so ``select_batch_size``
    returned 0 and the server spun in epsilon-sized clock advances around
    the boundary (dispatching nothing each time) until the slack decayed.
    """
    policy = SLOAwarePolicy(
        max_batch_size=8, batch_timeout_ms=50.0, slo_ms=30.0, safety_factor=1.2
    )
    policy.estimator.observe(1, per_request_ms)
    queue = [_request(rid, arrival_ms=0.0, slo_ms=30.0) for rid in range(queued)]
    assert policy.select_batch_size(queue, 0.0) == 0
    wake = policy.next_deadline_ms(queue, 0.0)
    assert wake is not None and wake > 0.0
    assert policy.select_batch_size(queue, wake) >= 1


def test_make_policy_rejects_inapplicable_overrides():
    with pytest.raises(ValueError, match="batch_timeout_ms"):
        make_policy("fifo", batch_timeout_ms=20.0)
    with pytest.raises(ValueError, match="slo_ms"):
        make_policy("fifo", slo_ms=50.0)
    with pytest.raises(ValueError, match="slo_ms"):
        make_policy("timeout", batch_timeout_ms=4.0, slo_ms=50.0)
    with pytest.raises(KeyError):
        make_policy("nope")


def test_make_policy_applies_defaults_when_overrides_are_omitted():
    fifo = make_policy("fifo", max_batch_size=3)
    assert fifo.max_batch_size == 3
    timeout = make_policy("timeout")
    assert timeout.batch_timeout_ms == pytest.approx(5.0)
    slo = make_policy("slo", batch_timeout_ms=2.0)
    assert slo.batch_timeout_ms == pytest.approx(2.0)
    assert slo.slo_ms == pytest.approx(50.0)


def test_applicable_policy_overrides_filters_per_policy():
    from repro.serve import applicable_policy_overrides

    assert applicable_policy_overrides("fifo", batch_timeout_ms=4.0, slo_ms=50.0) == {}
    assert applicable_policy_overrides("timeout", batch_timeout_ms=4.0, slo_ms=50.0) == {
        "batch_timeout_ms": 4.0
    }
    assert applicable_policy_overrides("slo", batch_timeout_ms=4.0, slo_ms=50.0) == {
        "batch_timeout_ms": 4.0,
        "slo_ms": 50.0,
    }
