"""Workload generators: arrival processes and request generation."""

import pytest

from repro.datasets import load
from repro.serve import (
    BurstyProcess,
    DiurnalProcess,
    FlashCrowdProcess,
    PoissonProcess,
    TraceReplay,
    generate_requests,
    make_arrival_process,
)


def _times(process, duration_ms=2000.0):
    return list(process.arrival_times_ms(duration_ms))


def test_poisson_is_reproducible_from_seed():
    a = _times(PoissonProcess(200.0, seed=11))
    b = _times(PoissonProcess(200.0, seed=11))
    c = _times(PoissonProcess(200.0, seed=12))
    assert a == b
    assert a != c
    assert all(0.0 <= t < 2000.0 for t in a)
    assert a == sorted(a)


def test_poisson_mean_rate_is_close_to_target():
    times = list(PoissonProcess(500.0, seed=0).arrival_times_ms(20000.0))
    observed_rate = len(times) / 20.0
    assert observed_rate == pytest.approx(500.0, rel=0.1)


def test_bursty_preserves_long_run_mean_rate():
    times = list(BurstyProcess(500.0, seed=1).arrival_times_ms(60000.0))
    observed_rate = len(times) / 60.0
    assert observed_rate == pytest.approx(500.0, rel=0.15)


def test_bursty_is_actually_bursty():
    """Inter-arrival gaps should be far more variable than Poisson's."""
    import statistics

    def squared_cv(process):
        times = _times(process, duration_ms=30000.0)
        gaps = [b - a for a, b in zip(times[:-1], times[1:])]
        mean = statistics.mean(gaps)
        return statistics.pvariance(gaps) / (mean * mean)

    # Poisson gaps have CV^2 ~= 1; on/off modulation pushes it well above.
    assert squared_cv(BurstyProcess(300.0, seed=2)) > 1.5 * squared_cv(
        PoissonProcess(300.0, seed=2)
    )


def test_trace_replay_is_deterministic_and_rescaled():
    trace = [0.0, 1.0, 3.0, 6.0, 10.0]
    a = _times(TraceReplay(100.0, trace, seed=0), duration_ms=500.0)
    b = _times(TraceReplay(100.0, trace, seed=99), duration_ms=500.0)
    assert a == b  # no randomness consumed
    gaps = [y - x for x, y in zip(([0.0] + a)[:-1], a)]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(10.0, rel=0.2)  # 100 req/s -> 10 ms gaps


def test_diurnal_is_reproducible_from_seed():
    a = _times(DiurnalProcess(200.0, seed=7))
    b = _times(DiurnalProcess(200.0, seed=7))
    c = _times(DiurnalProcess(200.0, seed=8))
    assert a == b
    assert a != c
    assert a == sorted(a)


def test_diurnal_swings_between_trough_and_peak():
    """Arrivals concentrate around the rate curve's peak quarter-period and
    thin out around the trough, while the long-run mean stays on target."""
    process = DiurnalProcess(400.0, seed=0, period_ms=4000.0, trough_fraction=0.25)
    times = _times(process, duration_ms=40000.0)
    observed_rate = len(times) / 40.0
    assert observed_rate == pytest.approx(400.0, rel=0.1)

    def count_in_phase(center_fraction):
        lo = center_fraction - 0.125
        hi = center_fraction + 0.125
        return sum(1 for t in times if lo <= (t % 4000.0) / 4000.0 < hi)

    peak = count_in_phase(0.25)  # sin maximum
    trough = count_in_phase(0.75)  # sin minimum
    assert peak > 3 * trough


def test_diurnal_rate_curve_matches_the_formula():
    process = DiurnalProcess(100.0, seed=0, period_ms=1000.0, trough_fraction=0.25)
    assert process.rate_at(0.0) == pytest.approx(100.0)
    assert process.rate_at(250.0) == pytest.approx(175.0)  # peak: 2 - trough
    assert process.rate_at(750.0) == pytest.approx(25.0)  # trough fraction
    with pytest.raises(ValueError):
        DiurnalProcess(100.0, period_ms=0.0)
    with pytest.raises(ValueError):
        DiurnalProcess(100.0, trough_fraction=1.5)


def test_flash_crowd_is_reproducible_from_seed():
    kwargs = dict(flash_at_ms=500.0, flash_duration_ms=300.0, flash_multiplier=6.0)
    a = _times(FlashCrowdProcess(200.0, seed=5, **kwargs))
    b = _times(FlashCrowdProcess(200.0, seed=5, **kwargs))
    c = _times(FlashCrowdProcess(200.0, seed=6, **kwargs))
    assert a == b
    assert a != c
    assert a == sorted(a)


def test_flash_crowd_rate_jumps_only_inside_the_window():
    process = FlashCrowdProcess(
        300.0, seed=1, flash_at_ms=1000.0, flash_duration_ms=500.0, flash_multiplier=8.0
    )
    assert process.rate_at(999.0) == pytest.approx(300.0)
    assert process.rate_at(1000.0) == pytest.approx(2400.0)
    assert process.rate_at(1499.0) == pytest.approx(2400.0)
    assert process.rate_at(1500.0) == pytest.approx(300.0)
    times = _times(process, duration_ms=2000.0)
    inside = [t for t in times if 1000.0 <= t < 1500.0]
    outside = [t for t in times if t < 1000.0 or t >= 1500.0]
    # The 500 ms window at 8x should out-arrive the 1500 ms baseline remainder.
    assert len(inside) > len(outside)
    inside_rate = len(inside) / 0.5
    assert inside_rate == pytest.approx(2400.0, rel=0.25)


def test_flash_crowd_validates_its_window():
    with pytest.raises(ValueError):
        FlashCrowdProcess(100.0, flash_at_ms=-1.0)
    with pytest.raises(ValueError):
        FlashCrowdProcess(100.0, flash_duration_ms=0.0)
    with pytest.raises(ValueError):
        FlashCrowdProcess(100.0, flash_multiplier=0.5)


def test_make_arrival_process_forwards_process_kwargs():
    process = make_arrival_process(
        "flash-crowd", 100.0, seed=2, flash_at_ms=10.0, flash_multiplier=3.0
    )
    assert isinstance(process, FlashCrowdProcess)
    assert process.flash_multiplier == 3.0
    diurnal = make_arrival_process("diurnal", 100.0, period_ms=2500.0)
    assert isinstance(diurnal, DiurnalProcess)
    assert diurnal.period_ms == 2500.0
    with pytest.raises(TypeError):
        make_arrival_process("poisson", 100.0, flash_at_ms=10.0)


def test_make_arrival_process_registry():
    assert isinstance(make_arrival_process("poisson", 10.0), PoissonProcess)
    assert isinstance(make_arrival_process("bursty", 10.0), BurstyProcess)
    assert isinstance(
        make_arrival_process("trace", 10.0, trace_timestamps=[0.0, 1.0, 2.0]),
        TraceReplay,
    )
    with pytest.raises(KeyError):
        make_arrival_process("uniform", 10.0)
    with pytest.raises(ValueError):
        make_arrival_process("trace", 10.0)  # missing trace


def test_generate_requests_slices_the_stream_in_order():
    stream = load("wikipedia", scale="tiny").stream
    requests = generate_requests(
        stream, PoissonProcess(400.0, seed=3), duration_ms=300.0,
        events_per_request=2, slo_ms=25.0,
    )
    assert requests
    for index, request in enumerate(requests):
        assert request.request_id == index
        assert request.num_events == 2
        assert request.slo_ms == 25.0
        assert request.deadline_ms == pytest.approx(request.arrival_ms + 25.0)
    # Payloads are consecutive slices: concatenating any prefix stays sorted.
    firsts = [float(r.payload.timestamps[0]) for r in requests]
    assert firsts == sorted(firsts)


def test_generate_requests_never_outruns_the_stream():
    stream = load("wikipedia", scale="tiny").stream
    requests = generate_requests(
        stream, PoissonProcess(100000.0, seed=0), duration_ms=100000.0,
        events_per_request=3,
    )
    assert len(requests) == stream.num_events // 3
