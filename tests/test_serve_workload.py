"""Workload generators: arrival processes and request generation."""

import pytest

from repro.datasets import load
from repro.serve import (
    BurstyProcess,
    PoissonProcess,
    TraceReplay,
    generate_requests,
    make_arrival_process,
)


def _times(process, duration_ms=2000.0):
    return list(process.arrival_times_ms(duration_ms))


def test_poisson_is_reproducible_from_seed():
    a = _times(PoissonProcess(200.0, seed=11))
    b = _times(PoissonProcess(200.0, seed=11))
    c = _times(PoissonProcess(200.0, seed=12))
    assert a == b
    assert a != c
    assert all(0.0 <= t < 2000.0 for t in a)
    assert a == sorted(a)


def test_poisson_mean_rate_is_close_to_target():
    times = list(PoissonProcess(500.0, seed=0).arrival_times_ms(20000.0))
    observed_rate = len(times) / 20.0
    assert observed_rate == pytest.approx(500.0, rel=0.1)


def test_bursty_preserves_long_run_mean_rate():
    times = list(BurstyProcess(500.0, seed=1).arrival_times_ms(60000.0))
    observed_rate = len(times) / 60.0
    assert observed_rate == pytest.approx(500.0, rel=0.15)


def test_bursty_is_actually_bursty():
    """Inter-arrival gaps should be far more variable than Poisson's."""
    import statistics

    def squared_cv(process):
        times = _times(process, duration_ms=30000.0)
        gaps = [b - a for a, b in zip(times[:-1], times[1:])]
        mean = statistics.mean(gaps)
        return statistics.pvariance(gaps) / (mean * mean)

    # Poisson gaps have CV^2 ~= 1; on/off modulation pushes it well above.
    assert squared_cv(BurstyProcess(300.0, seed=2)) > 1.5 * squared_cv(
        PoissonProcess(300.0, seed=2)
    )


def test_trace_replay_is_deterministic_and_rescaled():
    trace = [0.0, 1.0, 3.0, 6.0, 10.0]
    a = _times(TraceReplay(100.0, trace, seed=0), duration_ms=500.0)
    b = _times(TraceReplay(100.0, trace, seed=99), duration_ms=500.0)
    assert a == b  # no randomness consumed
    gaps = [y - x for x, y in zip(([0.0] + a)[:-1], a)]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(10.0, rel=0.2)  # 100 req/s -> 10 ms gaps


def test_make_arrival_process_registry():
    assert isinstance(make_arrival_process("poisson", 10.0), PoissonProcess)
    assert isinstance(make_arrival_process("bursty", 10.0), BurstyProcess)
    assert isinstance(
        make_arrival_process("trace", 10.0, trace_timestamps=[0.0, 1.0, 2.0]),
        TraceReplay,
    )
    with pytest.raises(KeyError):
        make_arrival_process("uniform", 10.0)
    with pytest.raises(ValueError):
        make_arrival_process("trace", 10.0)  # missing trace


def test_generate_requests_slices_the_stream_in_order():
    stream = load("wikipedia", scale="tiny").stream
    requests = generate_requests(
        stream, PoissonProcess(400.0, seed=3), duration_ms=300.0,
        events_per_request=2, slo_ms=25.0,
    )
    assert requests
    for index, request in enumerate(requests):
        assert request.request_id == index
        assert request.num_events == 2
        assert request.slo_ms == 25.0
        assert request.deadline_ms == pytest.approx(request.arrival_ms + 25.0)
    # Payloads are consecutive slices: concatenating any prefix stays sorted.
    firsts = [float(r.payload.timestamps[0]) for r in requests]
    assert firsts == sorted(firsts)


def test_generate_requests_never_outruns_the_stream():
    stream = load("wikipedia", scale="tiny").stream
    requests = generate_requests(
        stream, PoissonProcess(100000.0, seed=0), duration_ms=100000.0,
        events_per_request=3,
    )
    assert len(requests) == stream.num_events // 3
